// Fast-path kernel for the Periodic Messages model.
//
// `PeriodicMessagesModel` runs on the generic DES engine: every timer is a
// type-erased callback in a general-purpose priority queue, and every
// transmission walks all N nodes to extend their busy periods. This kernel
// is the same model compiled down to its actual physics:
//
//   * Struct-of-arrays node state — next-expiry, busy-until, pending-own
//     counts, transmission counters live in flat vectors, not per-node
//     objects holding engine handles. The metro-scale layout packs the
//     flag/seq bookkeeping into two 4-byte lanes (see below): 24 B/router
//     of fixed state in the default shared-busy model, reported exactly by
//     state_bytes().
//   * A dedicated two-level calendar queue (`PmCalendarQueue`) sized from
//     Tp/Tc replaces the generic `EventQueue`: events are 24-byte PODs
//     (time, FIFO seq, kind|node), pushes drop into a day bucket in O(1),
//     and idle gaps of ~Tp are skipped with one bitmap scan instead of a
//     log-n heap walk per event. No per-event allocation, no type erasure,
//     no generation-counted handles.
//   * The paper's own Section 4 assumptions collapse the hot loop: under
//     Notification::Immediate with a shared Tc, *every* node's busy period
//     ends at the same instant at all times (all start idle; every
//     transmission applies the same extend rule to all nodes at the same
//     moment). The kernel therefore keeps ONE shared busy-until scalar and
//     turns the engine model's O(N) per-transmission broadcast into O(1).
//     Per-node Tc or AfterPreparation notification fall back to a per-node
//     busy array with the same event ordering.
//
// Fidelity contract: a kernel run is *bit-identical* to the engine-backed
// model — same RNG draw order, same (time, FIFO) event execution order,
// same `events_processed` count, same trace events (types, sequence
// numbers, payloads) when tracing is on, and therefore the same
// ClusterTracker series. The randomized differential test
// (tests/pm_kernel_test.cpp) and the frozen traced-run golden hash in
// determinism_test enforce this. Anything the kernel cannot replicate
// exactly (currently: nothing in the model itself — only the
// engine-attached ResourceSampler) stays on the engine path; see
// ExperimentConfig::backend.
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "core/periodic_messages.hpp"
#include "core/timer_policy.hpp"
#include "rng/rng.hpp"
#include "sim/time.hpp"

namespace routesync::obs {
class Tracer;
}

namespace routesync::core {

class ClusterTracker;

/// One pending kernel event: plain data, 24 bytes, no callback. `seq`
/// mirrors the engine queue's FIFO push counter so ties at equal times
/// break identically.
struct PmEvent {
    double time = 0.0;
    std::uint64_t seq = 0;
    std::uint32_t kind = 0; ///< packed: see kPmKindBits
    std::uint32_t node = 0;
};

enum PmEventKind : std::uint32_t {
    kPmTimer = 0,     ///< a node's routing timer expires
    kPmBusyCheck = 1, ///< end-of-busy-period check (lazy revalidation)
    kPmDeliver = 2,   ///< AfterPreparation message delivery
    kPmTrigger = 3,   ///< triggered-update wave on every node
    kPmHook = 4,      ///< scheduled std::function (resource sampling etc.)
};

/// PmEvent::kind packs the PmEventKind in the low 3 bits; for kPmTimer
/// events the upper 29 bits carry the scheduling node's re-arm generation
/// (timer_gen_, below) so a queued timer identifies itself as live or
/// stale with one integer compare — no per-node 8-byte seq lane needed.
inline constexpr std::uint32_t kPmKindBits = 3;
inline constexpr std::uint32_t kPmKindMask = (1U << kPmKindBits) - 1;
inline constexpr std::uint32_t kPmGenMask = 0xFFFFFFFFU >> kPmKindBits;

/// Calendar buckets keep their storage across days (steady-state rounds
/// reuse it allocation-free) up to this many events; a drained bucket
/// above the threshold returns its storage — see pop_min.
inline constexpr std::size_t kPmBucketRetainEvents = 256;

/// Two-level calendar/bucket timer queue for PmEvents.
///
/// Level 1: `bucket_count` (power of two) day buckets of width
/// `bucket_width` seconds; an event lands in bucket floor(t/w) mod B.
/// Because the horizon B*w is sized beyond the maximum scheduling offset
/// the model produces (one full timer interval plus the busy-period
/// slack), a bucket holds events of a single "day" at a time. A bitmap of
/// non-empty buckets turns the ~Tp idle gap between rounds into a couple
/// of count-trailing-zeros jumps. Level 2: events beyond the horizon wait
/// in an unsorted overflow vector and are folded into the buckets when the
/// current day reaches them (`min-day` cached so the common case tests one
/// branch).
///
/// Batched expiry: when the day cursor reaches a bucket, the bucket is
/// sorted ONCE into an ascending (time, seq) run and consumed by bumping a
/// cursor — no per-event heap sift. At metro scale a synchronized cluster
/// drops 10^5+ equal-time timers into one bucket; draining them costs one
/// O(k log k) sort plus k pointer bumps instead of k * O(log k)
/// sift-downs over a k-wide heap (and the sorted run is scanned
/// sequentially, not hopped through heap levels). Events pushed into the
/// *current* bucket after its sort (re-armed timers landing in the same
/// day, busy-check re-arms) go to a small `spill` min-heap; peek serves
/// whichever of run-head/spill-top is earlier, which preserves the exact
/// global order because both sources are themselves (time, seq)-ordered.
///
/// Ordering is strictly (time, seq) — identical to sim::EventQueue's
/// FIFO-among-equal-times contract.
class PmCalendarQueue {
public:
    /// `horizon_hint`: an upper estimate of how far ahead of `now` events
    /// get scheduled (e.g. max timer interval + N*Tc). The queue stays
    /// correct if the hint is wrong — outliers go through overflow — but
    /// accurate hints keep placement O(1).
    explicit PmCalendarQueue(double horizon_hint);

    // The push/peek/pop trio runs once per simulated event; defined
    // inline so the kernel's run loop compiles down to direct bucket and
    // cursor operations with no cross-TU calls.

    void push(double time, std::uint64_t seq, std::uint32_t kind,
              std::uint32_t node) {
        const std::int64_t d = day_of(time);
        assert(d >= day_ && "push into the past breaks the day cursor");
        if (d >= day_ + static_cast<std::int64_t>(bucket_count_)) {
            if (overflow_.empty() || d < overflow_min_day_) {
                overflow_min_day_ = d;
            }
            overflow_.push_back(PmEvent{time, seq, kind, node});
        } else {
            const std::size_t b = static_cast<std::size_t>(d) & bucket_mask_;
            if (cursor_sorted_ && b == cursor_b_) {
                // In-window pushes to the cursor index are always
                // cursor-day events (an aliasing day would be >= day_ + B,
                // i.e. overflow). The sorted run must not be disturbed, so
                // late arrivals heap into the spill lane. Re-armed timers
                // carry fresh (monotone) seqs at now+Tp-ish times, so the
                // typical sift terminates immediately.
                spill_.push_back(PmEvent{time, seq, kind, node});
                std::push_heap(spill_.begin(), spill_.end(), after);
            } else {
                buckets_[b].push_back(PmEvent{time, seq, kind, node});
                occupied_[b >> 6] |= std::uint64_t{1} << (b & 63U);
            }
        }
        ++live_;
    }

    [[nodiscard]] bool empty() const noexcept { return live_ == 0; }
    [[nodiscard]] std::size_t size() const noexcept { return live_; }

    /// Locates the earliest (time, seq) event without removing it.
    /// Precondition: !empty(). Advances the internal day cursor over idle
    /// gaps as a side effect (monotone, so repeated peeks are cheap).
    [[nodiscard]] const PmEvent& peek_min() {
        assert(live_ > 0);
        for (;;) {
            if (!overflow_.empty() &&
                overflow_min_day_ <
                    day_ + static_cast<std::int64_t>(bucket_count_)) {
                flush_overflow();
            }
            std::vector<PmEvent>& bucket = buckets_[cursor_b_];
            if (!cursor_sorted_ && !bucket.empty()) {
                std::sort(bucket.begin(), bucket.end(), before);
                cursor_sorted_ = true;
                cursor_pos_ = 0;
            }
            const bool have_run = cursor_sorted_ && cursor_pos_ < bucket.size();
            if (have_run || !spill_.empty()) {
                if (!have_run) {
                    peek_from_spill_ = true;
                    return spill_.front();
                }
                if (!spill_.empty() && before(spill_.front(), bucket[cursor_pos_])) {
                    peek_from_spill_ = true;
                    return spill_.front();
                }
                peek_from_spill_ = false;
                return bucket[cursor_pos_];
            }
            advance_to_next_bucket();
        }
    }

    /// Removes the event peek_min() returned. Must follow a peek_min()
    /// with no intervening push.
    void pop_min() {
        std::vector<PmEvent>& bucket = buckets_[cursor_b_];
        assert(cursor_sorted_ && "pop_min without a preceding peek_min");
        if (peek_from_spill_) {
            assert(!spill_.empty());
            std::pop_heap(spill_.begin(), spill_.end(), after);
            spill_.pop_back();
        } else {
            assert(cursor_pos_ < bucket.size());
            ++cursor_pos_;
        }
        --live_;
        if (cursor_pos_ >= bucket.size() && spill_.empty()) {
            // Day fully drained: release the run in one shot and return
            // the bucket to append-only mode for its next day.
            bucket.clear();
            if (bucket.capacity() > kPmBucketRetainEvents) {
                // A synchronized cluster drops its whole membership into
                // one day — a different ring slot every round, since the
                // cluster period is not a multiple of the horizon. Left
                // alone, each visited slot would keep that high-water
                // capacity forever and the queue's footprint would grow
                // by ~24*N bytes per round. Oversized runs are rare (one
                // per cluster round), so one free/realloc cycle per round
                // is noise next to the O(N log N) sort that consumed it.
                std::vector<PmEvent>{}.swap(bucket);
            }
            occupied_[cursor_b_ >> 6] &=
                ~(std::uint64_t{1} << (cursor_b_ & 63U));
            cursor_sorted_ = false;
            cursor_pos_ = 0;
        }
    }

    /// Bytes retained by bucket/overflow/spill storage (capacity, not
    /// size) — the queue's share of a kernel memory report.
    [[nodiscard]] std::size_t memory_bytes() const noexcept;

private:
    void flush_overflow();
    void advance_to_next_bucket();

    [[nodiscard]] static bool before(const PmEvent& a,
                                     const PmEvent& b) noexcept {
        return a.time < b.time || (a.time == b.time && a.seq < b.seq);
    }
    /// std::*_heap comparator for a MIN-heap on (time, seq).
    [[nodiscard]] static bool after(const PmEvent& a,
                                    const PmEvent& b) noexcept {
        return before(b, a);
    }

    [[nodiscard]] std::int64_t day_of(double t) const noexcept {
        return static_cast<std::int64_t>(t * inv_width_);
    }

    double width_;
    double inv_width_;
    std::size_t bucket_count_;
    std::size_t bucket_mask_;
    std::int64_t day_ = 0; ///< current day cursor (buckets before it are empty)
    std::size_t cursor_b_ = 0; ///< cached day_ & bucket_mask_
    std::size_t live_ = 0;
    std::vector<std::vector<PmEvent>> buckets_;
    std::vector<std::uint64_t> occupied_; ///< bitmap over buckets
    std::vector<PmEvent> overflow_;       ///< events with day >= day_ + B
    std::int64_t overflow_min_day_ = 0;   ///< valid when !overflow_.empty()
    /// True when the cursor-day bucket has been sorted into its
    /// consumption run. Invariants: cursor_pos_ > 0 and spill_ non-empty
    /// only while cursor_sorted_; spill_ holds only cursor-day events.
    bool cursor_sorted_ = false;
    bool peek_from_spill_ = false; ///< which source the last peek chose
    std::size_t cursor_pos_ = 0;   ///< next unconsumed index in the run
    std::vector<PmEvent> spill_;   ///< min-heap of post-sort same-day pushes
};

/// The fused engine+model fast path. Mirrors the externally observable
/// API of (sim::Engine, PeriodicMessagesModel) so `run_experiment` can
/// drive either interchangeably.
class PmKernel {
public:
    /// Same contract as PeriodicMessagesModel: validates params, draws
    /// each node's first expiry (consuming the RNG in node order), and
    /// schedules the initial timers. `tracer` may be null (tracing off).
    explicit PmKernel(const ModelParams& params,
                      std::unique_ptr<TimerPolicy> policy = nullptr,
                      obs::Tracer* tracer = nullptr);

    PmKernel(const PmKernel&) = delete;
    PmKernel& operator=(const PmKernel&) = delete;

    /// Fires when a node's timer expires and it begins transmitting.
    std::function<void(int node, sim::SimTime t)> on_transmit;
    /// Fires when a node completes its busy period and re-arms its timer.
    std::function<void(int node, sim::SimTime t)> on_timer_set;
    /// Direct ClusterTracker feed for timer re-arms. When set it takes
    /// the place of `on_timer_set`: the experiment driver's only use of
    /// that callback is forwarding to a tracker, and the re-arm site is
    /// hot enough that skipping the std::function hop is measurable.
    ClusterTracker* tracker_sink = nullptr;

    /// Schedules a triggered update on every node at absolute time `t`
    /// (the ExperimentConfig::trigger_all_at path). Must be scheduled in
    /// the same relative push order as the engine path: after
    /// construction, before running.
    void schedule_trigger_all(sim::SimTime t);

    /// Schedules `fn` to run once at absolute time `t` as a kernel event
    /// (it advances now() and counts in events_processed(), matching an
    /// Engine-scheduled callback). This is the hook the ResourceSampler
    /// uses to tick over virtual time on the kernel path.
    void schedule_hook(sim::SimTime t, std::function<void()> fn);

    /// Immediate triggered update (parity with the model's API).
    void trigger_update(std::span<const int> nodes);
    void trigger_update_all();

    /// Runs every event with timestamp <= `t`, then advances now() to `t`.
    /// Returns early (leaving now() at the last event) if stop() is
    /// called from a callback — exactly sim::Engine::run_until semantics.
    /// Inline so the queue's peek/pop fold into the loop.
    void run_until(sim::SimTime t) {
        const double t_sec = t.sec();
        while (!stopped_) {
            // Discard stale (cancelled) timers before the boundary check —
            // EventQueue::next_time() does the same tombstone skip, so the
            // engine's loop condition only ever sees live events. A timer
            // is live iff the generation packed into its kind field still
            // matches the node's current (odd = pending) generation.
            const PmEvent* head = nullptr;
            while (!queue_.empty()) {
                const PmEvent& e = queue_.peek_min();
                if ((e.kind & kPmKindMask) == kPmTimer) {
                    const auto idx = static_cast<std::size_t>(e.node);
                    if ((e.kind >> kPmKindBits) !=
                        (timer_gen_[idx] & kPmGenMask)) {
                        queue_.pop_min();
                        continue;
                    }
                }
                head = &e;
                break;
            }
            if (head == nullptr || head->time > t_sec) {
                break;
            }
            const PmEvent e = *head;
            queue_.pop_min();
            now_ = sim::SimTime::seconds(e.time);
            ++processed_;
            dispatch(e);
        }
        if (!stopped_ && now_ < t) {
            now_ = t;
        }
    }

    void stop() noexcept { stopped_ = true; }
    void clear_stop() noexcept { stopped_ = false; }
    [[nodiscard]] bool stop_requested() const noexcept { return stopped_; }

    [[nodiscard]] sim::SimTime now() const noexcept { return now_; }
    /// Callbacks executed so far — matches Engine::events_processed()
    /// step for step (cancelled timers never execute or count).
    [[nodiscard]] std::uint64_t events_processed() const noexcept {
        return processed_;
    }

    [[nodiscard]] int n() const noexcept { return params_.n; }
    [[nodiscard]] const ModelParams& params() const noexcept { return params_; }
    [[nodiscard]] sim::SimTime round_length() const noexcept;
    [[nodiscard]] sim::SimTime offset_of(sim::SimTime t) const noexcept;
    [[nodiscard]] NodeView node(int i) const;
    [[nodiscard]] std::uint64_t total_transmissions() const noexcept {
        return tx_count_;
    }

    /// True when every node shares one busy-until scalar (Immediate
    /// notification, uniform Tc) — the O(1)-per-transmission fast variant.
    [[nodiscard]] bool shared_busy() const noexcept { return shared_busy_; }

    /// Bytes of kernel state currently retained: the SoA node lanes plus
    /// the calendar queue's bucket storage (capacities, not sizes). Divide
    /// by n() for the bytes/router a metro-scale memory budget needs. In
    /// the default shared-busy model the fixed lanes are 24 B/router:
    /// next_expiry (8) + transmissions (8) + timer_gen (4) +
    /// pending_state (4).
    [[nodiscard]] std::size_t state_bytes() const noexcept;
    /// Live events in the calendar queue (for rs.* gauges).
    [[nodiscard]] std::size_t queue_size() const noexcept {
        return queue_.size();
    }

private:
    [[nodiscard]] sim::SimTime draw_interval(int i);
    void schedule_timer(int i, sim::SimTime at);
    void push_event(sim::SimTime at, std::uint32_t kind, std::uint32_t node);
    void dispatch(const PmEvent& e);
    void timer_expired(int i);
    void begin_transmission(int i);
    void deliver_from(int i);
    void busy_check(int i);
    void fire_trigger_all();
    void extend_busy(int i, sim::SimTime t);
    [[nodiscard]] sim::SimTime busy_end(int i) const noexcept {
        return shared_busy_ ? shared_busy_end_
                            : busy_end_[static_cast<std::size_t>(i)];
    }

    ModelParams params_;
    std::unique_ptr<TimerPolicy> policy_;
    rng::DefaultEngine gen_;
    obs::Tracer* tracer_ = nullptr;

    bool shared_busy_ = true;
    sim::SimTime shared_busy_end_ = -sim::SimTime::seconds(1.0);

    // Struct-of-arrays node state (index = node id), packed to the
    // metro-scale minimum. timer_gen_ fuses the old pending flag + 8-byte
    // live-seq lane: the count is bumped on every schedule/fire/cancel,
    // so odd = pending, and the truncated value is compared against the
    // generation packed into a surfacing timer event (a stale event can
    // outlive at most a calendar horizon — a handful of transitions —
    // so 29 bits cannot alias). pending_state_ fuses the old
    // pending-own count + busy-check flag into one word (bit 31 = a
    // busy-check event is queued; low 31 bits = own transmissions awaiting
    // re-arm) and is allocated only for the model variant that uses it.
    std::vector<sim::SimTime> next_expiry_;
    std::vector<sim::SimTime> busy_end_; ///< per-node variant only
    std::vector<std::uint64_t> transmissions_;
    std::vector<std::uint32_t> timer_gen_;
    std::vector<std::uint32_t> pending_state_; ///< !reset_at_expiry only

    PmCalendarQueue queue_;
    std::uint64_t next_seq_ = 0; ///< mirrors the engine queue's push counter
    std::uint64_t processed_ = 0;
    sim::SimTime now_ = sim::SimTime::zero();
    bool stopped_ = false;
    std::uint64_t tx_count_ = 0;

    std::vector<int> trigger_scratch_; ///< trigger_update_all's node list
    std::vector<std::function<void()>> hooks_; ///< kPmHook slots
    std::vector<std::uint32_t> free_hooks_;    ///< recycled hook slots
};

} // namespace routesync::core
