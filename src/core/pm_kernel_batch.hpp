// Batched structure-of-trials fast path for the Periodic Messages model.
//
// Parameter sweeps (Figures 7-15) are thousands of tiny independent
// trials, and the scalar PmKernel runs them one at a time: every trial
// pays its own construction, queue churn, and driver fixed costs on cold
// caches. This kernel advances B trials ("lanes") lock-step instead:
//
//   * Struct-of-arrays node state ACROSS trials — next-expiry, busy-end,
//     pending counts, transmission counters live in flat vectors laid out
//     [lane][node] (lane-major, per-lane base offsets), so a batch's
//     working set is contiguous and construction is B appends into seven
//     arrays instead of B*7 allocations.
//   * Per-lane sorted-run timer queues: each lane keeps its pending
//     16-byte packed events {time, seq|kind|node} in a flat array
//     sorted ascending, consumed through a head cursor, with a
//     one-slot hold buffer fusing the ubiquitous push-then-pop cycle
//     (a re-armed timer is usually the next event served). The model
//     makes this degenerate-fast: a re-armed timer lands at
//     now + Tp ± jitter, which is (almost) the queue MAXIMUM, so a
//     push is an append with a rarely-iterating backward bubble and a
//     pop is a cursor bump — no heap sift on either side. Binary
//     heaps (classic and bottom-up) and tournament trees were
//     measured and lost to this; see docs/PERFORMANCE.md.
//   * Batch-amortized RNG: one engine per lane, seeded exactly like the
//     scalar kernel's, with the uniform-jitter draw constants (lo, span)
//     hoisted per lane so the hot draw is one multiply-add on the raw
//     uniform01 bits. Draw ORDER within a lane is the scalar order, so
//     each lane's stream is bit-identical to a scalar run of the same
//     params. (A single jumped stream shared across lanes would break
//     that contract; see docs/PERFORMANCE.md.)
//   * Epoch lock-step: lanes advance in rotation through fixed simulated-
//     time epochs (a few round lengths each), keeping the batch's arrays
//     hot without ever coupling lane state.
//
// Fidelity contract: every lane is *bit-identical* to a scalar PmKernel
// run of the same spec — same RNG draw order, same (time, FIFO-seq) event
// execution order, same events_processed count, same callback and trace
// streams, and therefore the same ClusterTracker series. B = 1 is the
// scalar kernel with a different queue; the randomized differential in
// tests/pm_kernel_batch_test.cpp enforces the contract across policies,
// start conditions, per-node overrides, and trigger waves.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/periodic_messages.hpp"
#include "core/timer_policy.hpp"
#include "rng/rng.hpp"
#include "sim/time.hpp"

namespace routesync::obs {
class Tracer;
}

namespace routesync::core {

class ClusterTracker;

/// Everything one lane needs: the scalar PmKernel constructor surface.
struct PmLaneSpec {
    ModelParams params;
    std::unique_ptr<TimerPolicy> policy; ///< null -> UniformJitter(tp, tr)
    obs::Tracer* tracer = nullptr;       ///< per-lane; may be null
};

/// Runs B independent Periodic Messages trials lock-step. Node state is
/// SoA across lanes; each lane keeps its own RNG, event queue, and clock.
class PmKernelBatch {
public:
    /// Validates every lane (same checks and messages as the scalar
    /// kernel, in lane order) and draws the initial phases lane-by-lane
    /// in node order — each lane's RNG consumption matches a scalar
    /// construction of the same params.
    explicit PmKernelBatch(std::vector<PmLaneSpec> specs);

    PmKernelBatch(const PmKernelBatch&) = delete;
    PmKernelBatch& operator=(const PmKernelBatch&) = delete;

    /// Fires when a node's timer expires and it begins transmitting.
    std::function<void(std::size_t lane, int node, sim::SimTime t)> on_transmit;
    /// Fires when a node completes its busy period and re-arms its timer.
    std::function<void(std::size_t lane, int node, sim::SimTime t)> on_timer_set;
    /// Direct per-lane ClusterTracker feed for timer re-arms: an array of
    /// lanes() pointers (entries may be null). When set it takes the
    /// place of `on_timer_set` for lanes with a non-null entry — the
    /// experiment driver's only use of that callback is forwarding to the
    /// lane's tracker, and skipping the std::function hop is measurable
    /// on the re-arm path. The caller keeps the array alive through
    /// run_all_until().
    ClusterTracker* const* tracker_sinks = nullptr;

    [[nodiscard]] std::size_t lanes() const noexcept { return lanes_.size(); }

    /// Schedules a triggered update on every node of `lane` at absolute
    /// time `t` — same push-order contract as the scalar kernel (after
    /// construction, before running).
    void schedule_trigger_all(std::size_t lane, sim::SimTime t);

    /// Immediate triggered update on `lane` (API parity with the model).
    void trigger_update(std::size_t lane, std::span<const int> nodes);
    void trigger_update_all(std::size_t lane);

    /// Runs every lane until its own target time (targets.size() must
    /// equal lanes()), advancing lanes in epoch-sized rotation. Each
    /// lane observes exactly the scalar run_until(target) semantics:
    /// stop() leaves the lane's clock at its last event; otherwise the
    /// clock lands on the target.
    void run_all_until(std::span<const sim::SimTime> targets);

    /// Per-lane mirrors of the scalar kernel's introspection surface.
    void stop(std::size_t lane) noexcept { lanes_[lane].stopped = true; }
    void clear_stop(std::size_t lane) noexcept { lanes_[lane].stopped = false; }
    [[nodiscard]] bool stop_requested(std::size_t lane) const noexcept {
        return lanes_[lane].stopped;
    }
    [[nodiscard]] sim::SimTime now(std::size_t lane) const noexcept {
        return lanes_[lane].now;
    }
    [[nodiscard]] std::uint64_t events_processed(std::size_t lane) const noexcept {
        return lanes_[lane].processed;
    }
    [[nodiscard]] std::uint64_t total_transmissions(std::size_t lane) const noexcept {
        return lanes_[lane].tx_count;
    }
    [[nodiscard]] int n(std::size_t lane) const noexcept {
        return lanes_[lane].params.n;
    }
    [[nodiscard]] const ModelParams& params(std::size_t lane) const noexcept {
        return lanes_[lane].params;
    }
    [[nodiscard]] sim::SimTime round_length(std::size_t lane) const noexcept;
    [[nodiscard]] sim::SimTime offset_of(std::size_t lane, sim::SimTime t) const noexcept;
    [[nodiscard]] NodeView node(std::size_t lane, int i) const;
    [[nodiscard]] bool shared_busy(std::size_t lane) const noexcept {
        return lanes_[lane].shared_busy;
    }
    /// Bytes of kernel state attributable to one lane: its slice of the
    /// SoA node arrays plus its event-queue storage (capacity). The
    /// batched counterpart of PmKernel::state_bytes().
    [[nodiscard]] std::size_t lane_state_bytes(std::size_t lane) const noexcept;

    /// Max node count a lane may have (node ids pack into 22 bits of the
    /// event tag). Callers route wider models to the scalar kernel.
    static constexpr int kMaxNodes = 1 << 22;

private:
    /// 16-byte packed event. tag = seq << 24 | kind << 22 | node: seq in
    /// the high bits makes one u64 compare settle equal-time FIFO order
    /// (seqs are unique per lane), and kind/node unpack with shifts.
    struct BEvent {
        double time;
        std::uint64_t tag;
        [[nodiscard]] std::uint32_t kind() const noexcept {
            return static_cast<std::uint32_t>(tag >> 22) & 3U;
        }
        [[nodiscard]] std::uint32_t node() const noexcept {
            return static_cast<std::uint32_t>(tag) & 0x3fffffU;
        }
        [[nodiscard]] std::uint64_t seq() const noexcept { return tag >> 24; }
    };

    /// Per-lane control state (everything that is not node-indexed).
    struct Lane {
        ModelParams params;
        std::unique_ptr<TimerPolicy> policy;
        obs::Tracer* tracer = nullptr;
        rng::DefaultEngine gen{0};

        /// Pending events in ascending (time, tag) order; the live
        /// window is [q_head, q.size()). See q_insert / q_pop.
        std::vector<BEvent> q;
        std::size_t q_head = 0;
        BEvent hold{}; ///< one-slot most-recent-push buffer
        bool has_hold = false;

        std::size_t base = 0; ///< this lane's offset into the SoA arrays
        std::uint64_t next_seq = 0;
        std::uint64_t processed = 0;
        std::uint64_t tx_count = 0;
        sim::SimTime now = sim::SimTime::zero();
        sim::SimTime shared_busy_end = -sim::SimTime::seconds(1.0);
        double draw_lo = 0.0;   ///< uniform-jitter fast path: lo constant
        double draw_span = 0.0; ///< uniform-jitter fast path: hi - lo
        bool fast_draw = false; ///< UniformJitter and no per-node Tp
        bool shared_busy = true;
        bool reset_at_expiry = false;
        bool immediate = true;
        bool can_cancel = false; ///< a timer may have been tombstoned
        bool stopped = false;
    };

    // Sorted-run primitives. q_insert appends and bubbles the new event
    // backward to its rank — zero iterations in the dominant case (a
    // re-armed timer is the queue maximum; only cluster-mates re-arming
    // under the same jitter window bubble a few slots). q_pop advances
    // the head cursor and compacts the consumed prefix once it grows
    // past a threshold, so the live window stays within a cache line or
    // two of the array head.
    static void q_insert(Lane& lane, BEvent e);
    static void q_pop(Lane& lane);
    [[nodiscard]] static bool before(const BEvent& a, const BEvent& b) noexcept {
        return a.time < b.time || (a.time == b.time && a.tag < b.tag);
    }

    void push_event(Lane& lane, double time, std::uint32_t kind,
                    std::uint32_t node);
    [[nodiscard]] sim::SimTime draw_interval(Lane& lane, int i);
    void schedule_timer(Lane& lane, int i, sim::SimTime at);
    void begin_transmission(Lane& lane, int i);
    void deliver_from(Lane& lane, int i);
    void busy_check(Lane& lane, int i);
    void extend_busy(Lane& lane, int i, sim::SimTime t);
    [[nodiscard]] sim::SimTime busy_end_of(const Lane& lane, int i) const noexcept {
        return lane.shared_busy
                   ? lane.shared_busy_end
                   : busy_end_[lane.base + static_cast<std::size_t>(i)];
    }
    void dispatch(Lane& lane, const BEvent& e);
    /// Advances one lane to min(epoch bound, its target). Returns true
    /// while the lane still has work before its target.
    [[nodiscard]] bool advance(Lane& lane, double bound_sec, sim::SimTime target);

    std::vector<Lane> lanes_;

    // SoA node state across lanes: index = lane.base + node.
    std::vector<sim::SimTime> next_expiry_;
    std::vector<sim::SimTime> busy_end_; ///< per-node-busy lanes only
    std::vector<std::uint64_t> timer_seq_;
    std::vector<std::uint64_t> transmissions_;
    std::vector<std::int32_t> pending_own_;
    std::vector<std::uint8_t> timer_pending_;
    std::vector<std::uint8_t> busy_check_scheduled_;
};

} // namespace routesync::core
