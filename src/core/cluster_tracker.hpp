// Cluster bookkeeping over a Periodic Messages run.
//
// A *cluster* is a set of nodes that re-arm ("set") their routing timers at
// the same instant — in the model, members of a cluster share busy-period
// arithmetic, so their timer-set times are exactly equal. The tracker
// groups timer-set events whose times fall within a small tolerance and
// derives from the groups everything the paper's figures need:
//
//   * the per-round largest cluster (Figures 6-8's "cluster graph"),
//   * first-hit times for each cluster size going up (Figure 10) and
//     coming down (Figure 11),
//   * the time of full synchronization (all N in one cluster),
//   * the fraction of rounds spent (un)synchronized (Figures 14-15's
//     simulated counterpart).
//
// Metro-scale layout: every per-size table is a flat 8-byte-per-entry
// array — hitting times use an infinity sentinel instead of
// std::optional<SimTime> (16 B/entry and a non-trivial assign loop), and
// the "rounds with largest <= s" table is maintained as a histogram
// increment per closed round (O(1)) with the cumulative form materialized
// once in finish(), not as an O(N) per-round suffix update. At N = 10^6
// the tracker's fixed state is 24 B/node and a closed round costs O(1)
// amortized.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sim/time.hpp"

namespace routesync::core {

/// A maximal set of simultaneous timer-set events.
struct ClusterEvent {
    sim::SimTime time; ///< when the cluster's members set their timers
    int size;
};

/// Largest cluster observed during one round. A round is N consecutive
/// timer-set events — the paper's "round of N routing messages" — so the
/// bookkeeping tracks the system's own cycle rather than wall-clock
/// buckets (a synchronized cluster's cycle is longer than Tp + Tc and
/// would straddle fixed buckets).
struct RoundLargest {
    std::uint64_t round;
    int largest;
    sim::SimTime end_time; ///< time of the round's last timer-set event
};

class ClusterTracker {
public:
    /// Above this node count, per-round record storage defaults OFF: a
    /// metro-scale run (N = 10^5..10^6) would otherwise grow an unbounded
    /// RoundLargest vector nobody asked for. record_rounds(true) still
    /// enables it explicitly at any N.
    static constexpr int kAutoRecordRoundsMaxN = 4096;

    /// `n` — node count; `round_length` — Tp + Tc (phase-space modulus);
    /// `tolerance` — max spacing between timer-set events in one cluster.
    ClusterTracker(int n, sim::SimTime round_length,
                   sim::SimTime tolerance = sim::SimTime::micros(1.0));

    /// Reconfigures the tracker for a fresh run without releasing its
    /// scratch buffers: the event/round vectors keep their capacity and
    /// the per-size arrays are overwritten in place, so a pooled tracker
    /// (e.g. one per batch lane, reused across batches) costs no
    /// allocations after warm-up. Same validation as the constructor;
    /// callbacks and record flags revert to their defaults. A reset
    /// tracker is indistinguishable from a freshly constructed one.
    void reset(int n, sim::SimTime round_length,
               sim::SimTime tolerance = sim::SimTime::micros(1.0));

    /// Feed: call for every timer-set event, in nondecreasing time order.
    void on_timer_set(int node, sim::SimTime t);

    /// Flushes the final group and closes the last round. Call once after
    /// the simulation stops; the tracker then becomes read-only.
    void finish();

    /// Invoked the moment the current group reaches size n (full
    /// synchronization) — before finish(); use it to stop the engine early.
    std::function<void(sim::SimTime)> on_full_sync;
    /// Invoked the first time each cluster size is reached (size, time).
    std::function<void(int, sim::SimTime)> on_size_first_reached;
    /// Invoked when a round closes with its largest cluster size.
    std::function<void(const RoundLargest&)> on_round_closed;

    /// Enables storage of every cluster event (off by default: a 10^7 s run
    /// produces millions of events).
    void record_events(bool on) noexcept { record_events_ = on; }
    /// Enables storage of per-round largest-cluster records (default: on
    /// for n <= kAutoRecordRoundsMaxN, off above — see the constant).
    void record_rounds(bool on) noexcept { record_rounds_ = on; }

    [[nodiscard]] const std::vector<ClusterEvent>& events() const noexcept {
        return events_;
    }
    [[nodiscard]] const std::vector<RoundLargest>& rounds() const noexcept {
        return rounds_;
    }

    /// First time a cluster of size >= s was observed (s in [1, n]).
    [[nodiscard]] std::optional<sim::SimTime> first_time_size_at_least(int s) const;
    /// End-time of the first closed round whose largest cluster was <= s.
    [[nodiscard]] std::optional<sim::SimTime> first_round_largest_at_most(int s) const;
    /// Time of full synchronization, if reached.
    [[nodiscard]] std::optional<sim::SimTime> full_sync_time() const {
        return first_time_size_at_least(n_);
    }

    /// Closed rounds whose largest cluster was <= s, and total closed
    /// rounds — the simulated "fraction of time unsynchronized".
    [[nodiscard]] std::uint64_t rounds_with_largest_at_most(int s) const;
    [[nodiscard]] std::uint64_t rounds_closed() const noexcept { return rounds_closed_; }

    [[nodiscard]] int n() const noexcept { return n_; }

    /// Bytes held by the per-size tables and record vectors (capacity, not
    /// size) — the number a metro-scale memory budget needs.
    [[nodiscard]] std::size_t state_bytes() const noexcept;

private:
    void finalize_group();
    void close_current_round();

    int n_;
    sim::SimTime round_length_;
    sim::SimTime tolerance_;

    // Current group of simultaneous timer-set events.
    bool group_open_ = false;
    sim::SimTime group_start_ = sim::SimTime::zero();
    sim::SimTime group_last_ = sim::SimTime::zero();
    int group_size_ = 0;
    std::uint64_t group_round_ = 0;      ///< round of the group's first event
    std::uint64_t group_last_round_ = 0; ///< round of the group's last event

    // Current round accumulator (rounds are N events long). The event
    // round is carried as a running counter (idx_in_round_ wraps at n_)
    // instead of dividing event ordinals by n_ — finalize_group() runs
    // once per group and the two divisions dominated its profile.
    std::uint64_t events_seen_ = 0;
    std::uint64_t event_round_ = 0; ///< events_seen_ / n_, maintained
    int idx_in_round_ = 0;          ///< events_seen_ % n_, maintained
    std::uint64_t current_round_ = 0;
    int current_round_largest_ = 0;
    int spill_largest_ = 0; ///< size of a group straddling into the next round
    int max_size_seen_ = 0; ///< largest group size so far: first_up_[s]
                            ///< has a value exactly for s <= this
    int down_filled_from_ = 0; ///< first_down_[s] has a value for s >= this
    sim::SimTime round_end_time_ = sim::SimTime::zero();

    bool record_events_ = false;
    bool record_rounds_ = true;
    bool finished_ = false;

    std::vector<ClusterEvent> events_;
    std::vector<RoundLargest> rounds_;
    /// Sentinel-valued hitting-time tables, [size] 1..n: infinity = never.
    std::vector<sim::SimTime> first_up_;
    std::vector<sim::SimTime> first_down_;
    /// Before finish(): rounds_by_largest_[s] counts closed rounds whose
    /// largest cluster was exactly s (one increment per round). finish()
    /// prefix-sums it in place into the cumulative "at most s" form.
    std::vector<std::uint64_t> rounds_by_largest_;
    std::uint64_t rounds_closed_ = 0;
};

} // namespace routesync::core
