// One-call experiment driver for the Periodic Messages model: builds the
// engine, model, and cluster tracker, wires them together, applies stop
// conditions, and returns a plain-data result. Every figure bench and most
// tests go through this entry point.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/cluster_tracker.hpp"
#include "core/periodic_messages.hpp"
#include "core/timer_policy.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/sync_monitor.hpp"
#include "sim/sim.hpp"

namespace routesync::obs {
class RunContext;
}

namespace routesync::core {

/// One routing-message transmission (Figure 4's scatter points).
struct TransmitRecord {
    int node;
    double time_sec;
    double offset_sec; ///< time mod (Tp + Tc)
};

/// Which simulation core executes the run. Both produce bit-identical
/// results (RNG order, event order, traces, metrics) — the choice is pure
/// performance.
enum class ExperimentBackend {
    /// FastKernel unless a feature needs the real engine (currently only
    /// the ResourceSampler: sample_every > 0 with an obs context).
    Auto,
    /// The generic DES engine + PeriodicMessagesModel.
    Engine,
    /// The fused PM fast path (core/pm_kernel.hpp). If sampling is
    /// requested, a ResourceSampler ticks on the kernel's own event loop
    /// (PmKernel::schedule_hook) and reports rs.pm_kernel.* gauges —
    /// kernel state bytes and live queue depth over virtual time.
    FastKernel,
};

struct ExperimentConfig {
    ModelParams params;
    ExperimentBackend backend = ExperimentBackend::Auto;
    /// Hard stop; the run may end earlier via the stop_on_* conditions.
    sim::SimTime max_time = sim::SimTime::seconds(1e5);
    /// Stop the instant a cluster of size N forms.
    bool stop_on_full_sync = false;
    /// If > 0: stop the instant a cluster of at least this size forms
    /// (e.g. 2 to measure the time to the first pairing — the Markov
    /// model's f(2) calibration).
    int stop_on_cluster_size = 0;
    /// If > 0: stop once a closed round's largest cluster is <= this value
    /// (e.g. 1 to stop at full breakup). 0 disables.
    int stop_on_breakup_threshold = 0;
    /// Record every `transmit_stride`-th transmission (0 disables).
    int transmit_stride = 0;
    /// Record individual cluster events (time, size).
    bool record_cluster_events = false;
    /// Record the per-round largest-cluster series.
    bool record_rounds = false;
    /// Optional replacement timer policy (overrides params.tp/tr jitter).
    std::function<std::unique_ptr<TimerPolicy>()> make_policy;
    /// If set, fire a triggered update on every node at this time.
    std::optional<sim::SimTime> trigger_all_at;
    /// Optional observability context: its tracer (if any) is attached to
    /// the run's engine, so the model's timer/transmission events land in
    /// the configured sink, and cluster membership changes are traced.
    /// Not owned; must outlive the run. One context per concurrent run —
    /// do not share across parallel trials.
    obs::RunContext* obs = nullptr;
    /// If > 0 and `obs` is set: run a ResourceSampler at this cadence
    /// (seconds of sim time), emitting resource_sample events and rs.*
    /// gauges — the engine's queue depths on the engine path, kernel
    /// state bytes + queue depth on the explicit-FastKernel path. 0
    /// (default) = no sampler, no overhead. Sampling adds simulator
    /// events but never touches model state, so simulation outcomes are
    /// unchanged.
    double sample_every = 0.0;
    /// Attach a SyncMonitor (obs/sync_monitor.hpp): streaming order
    /// parameter r(t), per-round cluster entropy, the time-to-sync
    /// detector, and the causal coupling graph. Off by default — when
    /// off, the wiring is byte-for-byte what it was without the feature
    /// (the hot paths keep their direct ClusterTracker sink). Works on
    /// all three backends (engine, PmKernel, PmKernelBatch) with
    /// bit-identical results.
    bool monitor = false;
    /// Detector up-crossing level for r (monitor only).
    double sync_threshold = 0.95;
    /// Detector down-crossing at threshold - hysteresis (monitor only).
    double sync_hysteresis = 0.02;
};

struct ExperimentResult {
    std::optional<double> full_sync_time_sec;
    std::optional<double> breakup_time_sec; ///< vs stop_on_breakup_threshold
    std::vector<TransmitRecord> transmits;
    std::vector<ClusterEvent> cluster_events;
    std::vector<RoundLargest> rounds;
    /// [s] = first time (sec) a cluster of size >= s appeared, s in [1, N].
    std::vector<std::optional<double>> first_hit_up;
    /// [s] = end of first round whose largest cluster was <= s.
    std::vector<std::optional<double>> first_hit_down;
    std::uint64_t rounds_closed = 0;
    /// Closed rounds whose largest cluster was 1 (fully unsynchronized).
    std::uint64_t rounds_unsynchronized = 0;
    std::uint64_t total_transmissions = 0;
    std::uint64_t events_processed = 0;
    double end_time_sec = 0.0;
    double round_length_sec = 0.0;
    /// Bytes of simulation-core state the trial retained (SoA node lanes
    /// + timer-queue storage); divide by params.n for bytes/router. Filled
    /// by the kernel paths, 0 on the generic engine (whose type-erased
    /// queue has no comparable accounting). Deliberately NOT a metric:
    /// metrics blocks are bit-identical across backends by contract, and
    /// this number is backend-specific by nature.
    std::uint64_t kernel_state_bytes = 0;
    /// Synchronization analytics (set iff config.monitor was on).
    std::optional<obs::SyncReport> sync;
    /// Who-reset-whom graph (empty unless config.monitor was on).
    obs::CouplingGraph sync_coupling;
    /// Per-trial metric snapshot (always populated; cheap). TrialRunner
    /// merges these deterministically across trials — see
    /// parallel::merge_trial_metrics.
    obs::MetricsSnapshot metrics;
    /// Per-trial profiler snapshot; empty unless the process-wide
    /// profiler is on (obs::Profiler::set_process_enabled). Labels and
    /// counts are deterministic; wall-clock times are not.
    obs::ProfileSnapshot profile;
};

/// Runs one Periodic Messages experiment to completion.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config);

/// True when `config` can run as a lane of the batched kernel
/// (core/pm_kernel_batch.hpp): anything that forces the generic engine
/// (explicit Engine backend, ResourceSampler) or per-trial profiling
/// stays on the scalar path. Eligibility never changes results — both
/// paths are bit-identical — only which core executes the trial.
[[nodiscard]] bool batch_eligible(const ExperimentConfig& config);

/// Runs a batch of experiments, advancing every batch-eligible config
/// lock-step in the batched SoA kernel (ineligible configs fall back to
/// run_experiment). Results are returned in input order and are
/// byte-identical to calling run_experiment on each config one at a
/// time — batching is pure performance. A one-element batch degenerates
/// to run_experiment exactly.
[[nodiscard]] std::vector<ExperimentResult>
run_experiment_batch(std::span<const ExperimentConfig> configs);

} // namespace routesync::core
