// Constant-bit-rate audio source and outage-detecting sink — the workload
// behind the paper's Figure 3 (the December 1992 packet-video audiocast,
// where tunneled multicast audio competed with synchronized RIP updates
// and lost: 30-second-periodic loss spikes lasting seconds, 50-95 % loss
// inside a spike, against a background of random single-packet blips).
#pragma once

#include <cstdint>
#include <vector>

#include "net/node.hpp"

namespace routesync::apps {

struct CbrConfig {
    net::NodeId dst = -1;
    double packets_per_second = 50.0; ///< typical packet-audio rate
    std::uint32_t size_bytes = 180;   ///< ~20 ms of PCM + headers
    sim::SimTime stop_at = sim::SimTime::seconds(600);
};

/// Sends fixed-size packets at fixed spacing from a host.
class CbrSource {
public:
    CbrSource(net::Host& host, const CbrConfig& config);

    void start(sim::SimTime at);

    [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }
    [[nodiscard]] const CbrConfig& config() const noexcept { return config_; }

private:
    void send_next();

    net::Host& host_;
    CbrConfig config_;
    std::uint64_t sent_ = 0;
};

/// One contiguous run of lost audio.
struct AudioOutage {
    double start_sec;    ///< when the last packet before the gap arrived
    double duration_sec; ///< silence length (Figure 3's y-axis)
    std::uint64_t packets_lost;
};

/// Receives the CBR stream and reconstructs the outage series from
/// sequence-number gaps.
class AudioSink {
public:
    /// `spacing` must match the source (1 / packets_per_second).
    AudioSink(net::Host& host, sim::SimTime spacing);

    [[nodiscard]] std::uint64_t received() const noexcept { return received_; }
    [[nodiscard]] std::uint64_t lost() const noexcept { return lost_; }
    /// All outages (>= 1 packet), in time order. Call after the run.
    [[nodiscard]] const std::vector<AudioOutage>& outages() const noexcept {
        return outages_;
    }
    /// Outages of at least `min_duration` — Figure 3's "larger loss
    /// spikes" as opposed to the single-packet blips.
    [[nodiscard]] std::vector<AudioOutage>
    outages_longer_than(double min_duration_sec) const;

private:
    net::Host& host_;
    sim::SimTime spacing_;
    std::uint64_t received_ = 0;
    std::uint64_t lost_ = 0;
    std::uint64_t next_seq_ = 0;
    double last_arrival_sec_ = 0.0;
    std::vector<AudioOutage> outages_;
};

} // namespace routesync::apps
