// Umbrella header for the measurement applications.
#pragma once

#include "apps/background.hpp" // IWYU pragma: export
#include "apps/cbr.hpp"        // IWYU pragma: export
#include "apps/ping.hpp"       // IWYU pragma: export
