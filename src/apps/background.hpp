// Poisson background traffic — cross traffic that produces the random
// single-packet losses ("the little blips more-or-less randomly spread
// along the time axis", Figure 3) by occasionally overflowing bottleneck
// queues.
#pragma once

#include <cstdint>

#include "net/node.hpp"
#include "rng/rng.hpp"

namespace routesync::apps {

struct BackgroundConfig {
    net::NodeId dst = -1;
    double mean_packets_per_second = 100.0;
    std::uint32_t size_bytes = 512;
    sim::SimTime stop_at = sim::SimTime::seconds(600);
    std::uint64_t seed = 1;
};

/// Memoryless packet generator (exponential interarrivals).
class BackgroundTraffic {
public:
    BackgroundTraffic(net::Host& host, const BackgroundConfig& config);

    void start(sim::SimTime at);

    [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }

private:
    void send_next();

    net::Host& host_;
    BackgroundConfig config_;
    rng::DefaultEngine gen_;
    std::uint64_t sent_ = 0;
};

} // namespace routesync::apps
