// Ping measurement app — the instrument behind the paper's Figures 1-2
// ("runs of a thousand pings each, at one-second intervals"; actual
// spacing 1.01 s, which is why the ~90 s loss period shows up at
// autocorrelation lag 89).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/node.hpp"

namespace routesync::apps {

struct PingConfig {
    net::NodeId dst = -1;
    sim::SimTime interval = sim::SimTime::seconds(1.01);
    int count = 1000;
    /// A ping unanswered this long counts as lost (Figure 2 assigns lost
    /// pings a 2 s RTT, "higher than the largest roundtrip time").
    sim::SimTime timeout = sim::SimTime::seconds(2.0);
    std::uint32_t size_bytes = 64;
};

/// Sends `count` echo requests and records per-ping RTTs. Exactly one
/// PingApp may own a host's packet upcall.
class PingApp {
public:
    PingApp(net::Host& host, const PingConfig& config);

    /// Begins pinging at absolute time `at`.
    void start(sim::SimTime at);

    /// Fires once every ping has been answered or timed out.
    std::function<void()> on_complete;

    /// RTT per ping in seconds; lost pings are negative (as plotted in
    /// Figure 1). Valid after on_complete.
    [[nodiscard]] const std::vector<double>& rtts() const noexcept { return rtts_; }
    /// RTT series with losses replaced by `lost_value` (Figure 2 uses 2.0)
    /// — the form fed to the autocorrelation analysis.
    [[nodiscard]] std::vector<double> rtts_with_losses_as(double lost_value) const;

    [[nodiscard]] int sent() const noexcept { return sent_; }
    [[nodiscard]] int received() const noexcept { return received_; }
    [[nodiscard]] int lost() const noexcept { return sent_ - received_; }
    [[nodiscard]] double loss_fraction() const noexcept;

private:
    void send_next();
    void finalize();

    net::Host& host_;
    PingConfig config_;
    std::vector<double> rtts_;       // -1 until answered
    std::vector<double> send_times_; // seconds
    int sent_ = 0;
    int received_ = 0;
};

} // namespace routesync::apps
