#include "apps/background.hpp"

#include <stdexcept>

namespace routesync::apps {

BackgroundTraffic::BackgroundTraffic(net::Host& host, const BackgroundConfig& config)
    : host_{host}, config_{config}, gen_{config.seed} {
    if (config_.mean_packets_per_second <= 0.0) {
        throw std::invalid_argument{"BackgroundConfig: rate must be positive"};
    }
    if (config_.dst < 0) {
        throw std::invalid_argument{"BackgroundConfig: destination required"};
    }
}

void BackgroundTraffic::start(sim::SimTime at) {
    host_.engine().schedule_at(at, [this] { send_next(); });
}

void BackgroundTraffic::send_next() {
    auto& engine = host_.engine();
    if (engine.now() >= config_.stop_at) {
        return;
    }
    net::Packet p;
    p.type = net::PacketType::Data;
    p.src = host_.id();
    p.dst = config_.dst;
    p.size_bytes = config_.size_bytes;
    p.seq = sent_++;
    p.sent_at = engine.now();
    host_.send(std::move(p));
    engine.schedule_after(
        sim::SimTime::seconds(
            rng::exponential(gen_, 1.0 / config_.mean_packets_per_second)),
        [this] { send_next(); });
}

} // namespace routesync::apps
