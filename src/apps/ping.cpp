#include "apps/ping.hpp"

#include <stdexcept>

namespace routesync::apps {

PingApp::PingApp(net::Host& host, const PingConfig& config)
    : host_{host}, config_{config} {
    if (config_.count < 1) {
        throw std::invalid_argument{"PingConfig: count must be >= 1"};
    }
    if (config_.dst < 0) {
        throw std::invalid_argument{"PingConfig: destination required"};
    }
    if (host_.on_packet) {
        throw std::logic_error{"PingApp: host packet upcall already claimed"};
    }
    rtts_.assign(static_cast<std::size_t>(config_.count), -1.0);
    send_times_.assign(static_cast<std::size_t>(config_.count), 0.0);

    host_.on_packet = [this](const net::Packet& p) {
        if (p.type != net::PacketType::PingReply) {
            return;
        }
        const auto seq = static_cast<std::size_t>(p.seq);
        if (seq >= rtts_.size() || rtts_[seq] >= 0.0) {
            return; // unknown or duplicate
        }
        const double rtt =
            host_.engine().now().sec() - send_times_[seq];
        if (rtt <= config_.timeout.sec()) {
            rtts_[seq] = rtt;
            ++received_;
        }
    };
}

void PingApp::start(sim::SimTime at) {
    host_.engine().schedule_at(at, [this] { send_next(); });
}

void PingApp::send_next() {
    auto& engine = host_.engine();
    net::Packet p;
    p.type = net::PacketType::PingRequest;
    p.src = host_.id();
    p.dst = config_.dst;
    p.size_bytes = config_.size_bytes;
    p.seq = static_cast<std::uint64_t>(sent_);
    p.sent_at = engine.now();
    send_times_[static_cast<std::size_t>(sent_)] = engine.now().sec();
    host_.send(std::move(p));
    ++sent_;

    if (sent_ < config_.count) {
        engine.schedule_after(config_.interval, [this] { send_next(); });
    } else {
        engine.schedule_after(config_.timeout, [this] { finalize(); });
    }
}

void PingApp::finalize() {
    if (on_complete) {
        on_complete();
    }
}

std::vector<double> PingApp::rtts_with_losses_as(double lost_value) const {
    std::vector<double> out = rtts_;
    for (double& r : out) {
        if (r < 0.0) {
            r = lost_value;
        }
    }
    return out;
}

double PingApp::loss_fraction() const noexcept {
    return sent_ == 0 ? 0.0
                      : static_cast<double>(sent_ - received_) /
                            static_cast<double>(sent_);
}

} // namespace routesync::apps
