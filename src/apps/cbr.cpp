#include "apps/cbr.hpp"

#include <stdexcept>

namespace routesync::apps {

CbrSource::CbrSource(net::Host& host, const CbrConfig& config)
    : host_{host}, config_{config} {
    if (config_.packets_per_second <= 0.0) {
        throw std::invalid_argument{"CbrConfig: rate must be positive"};
    }
    if (config_.dst < 0) {
        throw std::invalid_argument{"CbrConfig: destination required"};
    }
}

void CbrSource::start(sim::SimTime at) {
    host_.engine().schedule_at(at, [this] { send_next(); });
}

void CbrSource::send_next() {
    auto& engine = host_.engine();
    if (engine.now() >= config_.stop_at) {
        return;
    }
    net::Packet p;
    p.type = net::PacketType::Audio;
    p.src = host_.id();
    p.dst = config_.dst;
    p.size_bytes = config_.size_bytes;
    p.seq = sent_++;
    p.sent_at = engine.now();
    host_.send(std::move(p));
    engine.schedule_after(sim::SimTime::seconds(1.0 / config_.packets_per_second),
                          [this] { send_next(); });
}

AudioSink::AudioSink(net::Host& host, sim::SimTime spacing)
    : host_{host}, spacing_{spacing} {
    if (host_.on_packet) {
        throw std::logic_error{"AudioSink: host packet upcall already claimed"};
    }
    host_.on_packet = [this](const net::Packet& p) {
        if (p.type != net::PacketType::Audio) {
            return;
        }
        const double now = host_.engine().now().sec();
        if (p.seq > next_seq_) {
            const std::uint64_t missing = p.seq - next_seq_;
            lost_ += missing;
            outages_.push_back(AudioOutage{
                .start_sec = received_ == 0 ? 0.0 : last_arrival_sec_,
                .duration_sec = static_cast<double>(missing) * spacing_.sec(),
                .packets_lost = missing,
            });
        }
        if (p.seq >= next_seq_) {
            next_seq_ = p.seq + 1;
            ++received_;
            last_arrival_sec_ = now;
        }
    };
}

std::vector<AudioOutage> AudioSink::outages_longer_than(double min_duration_sec) const {
    std::vector<AudioOutage> out;
    for (const auto& o : outages_) {
        if (o.duration_sec >= min_duration_sec) {
            out.push_back(o);
        }
    }
    return out;
}

} // namespace routesync::apps
