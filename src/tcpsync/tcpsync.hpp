// Umbrella header for the TCP window-synchronization study (the paper's
// Section 1 example [ZhCl90] and its randomized-gateway fix [FJ92]).
#pragma once

#include "tcpsync/aimd_flow.hpp"  // IWYU pragma: export
#include "tcpsync/bottleneck.hpp" // IWYU pragma: export
#include "tcpsync/experiment.hpp" // IWYU pragma: export
