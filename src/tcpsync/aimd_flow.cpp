#include "tcpsync/aimd_flow.hpp"

#include <algorithm>
#include <stdexcept>

namespace routesync::tcpsync {

AimdFlow::AimdFlow(sim::Engine& engine, Bottleneck& bottleneck,
                   const FlowConfig& config)
    : engine_{engine},
      bottleneck_{bottleneck},
      config_{config},
      window_{config.initial_window} {
    if (config_.rtt_sec <= 0.0) {
        throw std::invalid_argument{"AimdFlow: RTT must be positive"};
    }
    if (config_.initial_window < 1.0 || config_.max_window < config_.initial_window) {
        throw std::invalid_argument{"AimdFlow: bad window bounds"};
    }
}

void AimdFlow::start(sim::SimTime at) {
    engine_.schedule_at(at, [this] { send_next(); });
}

void AimdFlow::send_next() {
    if (engine_.now() >= config_.stop_at) {
        return;
    }
    FlowPacket p;
    p.flow = config_.id;
    p.seq = sent_++;
    p.sent_at = engine_.now();
    bottleneck_.enqueue(p);
    if (on_window_sample) {
        on_window_sample(engine_.now().sec(), window_);
    }
    // Self-pacing: w packets per RTT.
    engine_.schedule_after(sim::SimTime::seconds(config_.rtt_sec / window_),
                           [this] { send_next(); });
}

void AimdFlow::packet_delivered(const FlowPacket&) {
    ++acked_;
    if (engine_.now() >= recovery_until_) {
        // Congestion avoidance: +1/w per ACK, ~+1 per RTT.
        window_ = std::min(config_.max_window, window_ + 1.0 / window_);
    }
}

void AimdFlow::packet_dropped(const FlowPacket&) {
    // The sender learns about the loss roughly one RTT after sending.
    engine_.schedule_after(sim::SimTime::seconds(config_.rtt_sec),
                           [this] { loss_detected(); });
}

void AimdFlow::loss_detected() {
    if (engine_.now() < recovery_until_) {
        return; // one halving per RTT: losses in the same window collapse
    }
    halvings_.push_back(Halving{config_.id, engine_.now().sec(), window_});
    window_ = std::max(1.0, window_ / 2.0);
    recovery_until_ = engine_.now() + sim::SimTime::seconds(config_.rtt_sec);
}

} // namespace routesync::tcpsync
