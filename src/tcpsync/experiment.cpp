#include "tcpsync/experiment.hpp"

#include <algorithm>
#include <memory>
#include <set>

#include "stats/running_stats.hpp"

namespace routesync::tcpsync {

TcpExperimentResult run_tcp_experiment(const TcpExperimentConfig& config) {
    sim::Engine engine;
    Bottleneck bottleneck{engine, config.bottleneck};

    std::vector<std::unique_ptr<AimdFlow>> flows;
    flows.reserve(static_cast<std::size_t>(config.flows));
    rng::DefaultEngine phase_gen{config.seed};
    for (int i = 0; i < config.flows; ++i) {
        FlowConfig fc;
        fc.id = i;
        fc.rtt_sec = config.base_rtt_sec *
                     (1.0 + config.rtt_spread * static_cast<double>(i) /
                                std::max(1, config.flows));
        fc.stop_at = sim::SimTime::seconds(config.duration_sec);
        flows.push_back(std::make_unique<AimdFlow>(engine, bottleneck, fc));
    }

    bottleneck.on_delivered = [&flows](const FlowPacket& p) {
        flows[static_cast<std::size_t>(p.flow)]->packet_delivered(p);
    };
    bottleneck.on_dropped = [&flows](const FlowPacket& p) {
        flows[static_cast<std::size_t>(p.flow)]->packet_dropped(p);
    };

    for (auto& flow : flows) {
        flow->start(sim::SimTime::seconds(
            rng::uniform_real(phase_gen, 0.0, config.base_rtt_sec)));
    }

    // Sample the aggregate window once per base RTT.
    TcpExperimentResult result;
    std::function<void()> sample = [&] {
        double total = 0.0;
        for (const auto& flow : flows) {
            total += flow->window();
        }
        result.aggregate_window_series.push_back(total);
        if (engine.now().sec() < config.duration_sec) {
            engine.schedule_after(sim::SimTime::seconds(config.base_rtt_sec), sample);
        }
    };
    engine.schedule_at(sim::SimTime::zero(), sample);

    engine.run_until(sim::SimTime::seconds(config.duration_sec + 5.0));

    // Collect halvings across flows and cluster them in time.
    struct Event {
        double time;
        int flow;
    };
    std::vector<Event> events;
    stats::RunningStats window_stats;
    for (const auto& flow : flows) {
        for (const auto& h : flow->halvings()) {
            events.push_back(Event{h.time_sec, h.flow});
        }
        window_stats.add(flow->window());
    }
    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) { return a.time < b.time; });

    const double window = 0.5 * config.base_rtt_sec;
    std::size_t i = 0;
    while (i < events.size()) {
        std::size_t j = i;
        std::set<int> distinct;
        while (j < events.size() && events[j].time - events[i].time <= window) {
            distinct.insert(events[j].flow);
            ++j;
        }
        const auto cluster_size = j - i;
        if (distinct.size() >= 2) {
            result.clustered_halvings += cluster_size;
        }
        result.largest_halving_cluster = std::max(
            result.largest_halving_cluster, static_cast<int>(distinct.size()));
        i = j;
    }
    result.total_halvings = events.size();
    result.sync_index =
        events.empty() ? 0.0
                       : static_cast<double>(result.clustered_halvings) /
                             static_cast<double>(events.size());

    // Episode breadth: group halvings within 2 base RTTs and count the
    // distinct flows backing off together.
    stats::RunningStats breadth;
    const double episode_window = 2.0 * config.base_rtt_sec;
    i = 0;
    while (i < events.size()) {
        std::size_t j = i;
        std::set<int> distinct;
        while (j < events.size() && events[j].time - events[i].time <= episode_window) {
            distinct.insert(events[j].flow);
            ++j;
        }
        breadth.add(static_cast<double>(distinct.size()));
        i = j;
    }
    result.mean_flows_per_episode = breadth.mean();

    stats::RunningStats agg;
    for (const double w : result.aggregate_window_series) {
        agg.add(w);
    }
    result.aggregate_window_cov =
        agg.mean() > 0.0 ? agg.stddev() / agg.mean() : 0.0;

    const auto& bs = bottleneck.stats();
    result.link_utilization =
        static_cast<double>(bs.delivered) /
        (config.bottleneck.rate_pps * config.duration_sec);
    result.drop_fraction =
        bs.arrived == 0 ? 0.0
                        : static_cast<double>(bs.dropped) /
                              static_cast<double>(bs.arrived);
    result.mean_window = window_stats.mean();
    return result;
}

} // namespace routesync::tcpsync
