// A TCP-like AIMD source (congestion-avoidance approximation).
//
// The flow paces packets at w/RTT, grows its window by 1/w per delivered
// packet (so ~1 packet per RTT), and halves it when a loss is detected —
// at most once per RTT (fast-recovery-style suppression). This is the
// standard simplified TCP used in phase-effect studies [ZhCl90, FJ92]:
// detailed enough to show window synchronization at a shared bottleneck,
// simple enough to reason about.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/engine.hpp"
#include "tcpsync/bottleneck.hpp"

namespace routesync::tcpsync {

struct FlowConfig {
    int id = 0;
    double rtt_sec = 0.1;     ///< fixed propagation RTT (excl. queueing)
    double initial_window = 2.0;
    double max_window = 64.0;
    sim::SimTime stop_at = sim::SimTime::seconds(300);
};

/// One congestion-window halving (a "decrease event").
struct Halving {
    int flow;
    double time_sec;
    double window_before;
};

class AimdFlow {
public:
    AimdFlow(sim::Engine& engine, Bottleneck& bottleneck, const FlowConfig& config);

    AimdFlow(const AimdFlow&) = delete;
    AimdFlow& operator=(const AimdFlow&) = delete;

    void start(sim::SimTime at);

    /// Feed a delivery notification for this flow's packet (the experiment
    /// demultiplexes the bottleneck callbacks).
    void packet_delivered(const FlowPacket& p);
    /// Feed a drop notification; the loss is *detected* one RTT later.
    void packet_dropped(const FlowPacket& p);

    [[nodiscard]] double window() const noexcept { return window_; }
    [[nodiscard]] const FlowConfig& config() const noexcept { return config_; }
    [[nodiscard]] const std::vector<Halving>& halvings() const noexcept {
        return halvings_;
    }
    [[nodiscard]] std::uint64_t packets_sent() const noexcept { return sent_; }
    [[nodiscard]] std::uint64_t packets_acked() const noexcept { return acked_; }

    /// Sampled (time, window) trace for plots; one point per send.
    std::function<void(double time_sec, double window)> on_window_sample;

private:
    void send_next();
    void loss_detected();

    sim::Engine& engine_;
    Bottleneck& bottleneck_;
    FlowConfig config_;
    double window_;
    std::uint64_t sent_ = 0;
    std::uint64_t acked_ = 0;
    sim::SimTime recovery_until_ = sim::SimTime::zero();
    std::vector<Halving> halvings_;
};

} // namespace routesync::tcpsync
