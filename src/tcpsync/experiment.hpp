// Driver for the TCP window-synchronization study: M AIMD flows through
// one bottleneck, with the synchronization of their window-halving events
// quantified the same way the routing analysis quantifies timer clusters.
#pragma once

#include <cstdint>
#include <vector>

#include "tcpsync/aimd_flow.hpp"
#include "tcpsync/bottleneck.hpp"

namespace routesync::tcpsync {

struct TcpExperimentConfig {
    int flows = 8;
    double base_rtt_sec = 0.1;
    /// Per-flow RTT spread: flow i gets base * (1 + spread * i / flows).
    double rtt_spread = 0.1;
    BottleneckConfig bottleneck;
    double duration_sec = 300.0;
    std::uint64_t seed = 1;
};

struct TcpExperimentResult {
    /// Fraction of halving events that occurred in a multi-flow cluster
    /// (two or more distinct flows halving within half a base RTT) — the
    /// synchronization index. 0 = fully independent backoffs.
    double sync_index = 0.0;
    std::uint64_t total_halvings = 0;
    std::uint64_t clustered_halvings = 0;
    /// Largest number of distinct flows halving in one cluster.
    int largest_halving_cluster = 0;
    /// Mean number of distinct flows halving per backoff episode
    /// (episodes = halvings grouped within 2 base RTTs). Global
    /// synchronization drives this towards the flow count; randomized
    /// gateways towards 1.
    double mean_flows_per_episode = 0.0;
    double link_utilization = 0.0; ///< delivered / (rate * duration)
    double drop_fraction = 0.0;
    double mean_window = 0.0;
    /// Oscillation of the aggregate congestion window (std / mean of the
    /// per-RTT samples) — the "oscillating behavior" of [ZhCl90].
    double aggregate_window_cov = 0.0;
    /// Aggregate windows sampled once per base RTT (for oscillation plots).
    std::vector<double> aggregate_window_series;
};

[[nodiscard]] TcpExperimentResult run_tcp_experiment(const TcpExperimentConfig& config);

} // namespace routesync::tcpsync
