// A shared bottleneck gateway for the TCP window-synchronization study.
//
// Paper Section 1: "A well-known example of unintended synchronization is
// the synchronization of the window increase/decrease cycles of separate
// TCP connections sharing a common bottleneck gateway [ZhCl90] ...
// synchronization ... can be avoided by adding randomization to the
// gateway's algorithm for choosing packets to drop during periods of
// congestion [FJ92]."
//
// The gateway serves packets at a fixed rate from a bounded buffer and
// implements three drop disciplines:
//   * DropTail   — deterministic tail drop: overflow periods hit every
//                  flow that is sending, synchronizing their backoffs;
//   * RandomDrop — on overflow, evict a uniformly random *queued* packet
//                  instead of the arrival (the [FJ92]-era randomization);
//   * RedLike    — probabilistic early drop driven by an EWMA of the
//                  queue length (a simplified RED), which spreads the
//                  congestion signals out in time.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "rng/rng.hpp"
#include "sim/engine.hpp"

namespace routesync::tcpsync {

enum class DropPolicy {
    DropTail,
    RandomDrop,
    RedLike,
};

/// A packet in flight on the bottleneck, tagged with its flow.
struct FlowPacket {
    int flow = -1;
    std::uint64_t seq = 0;
    sim::SimTime sent_at;
};

struct BottleneckConfig {
    double rate_pps = 1000.0; ///< service rate, packets per second
    int buffer_packets = 50;
    DropPolicy policy = DropPolicy::DropTail;
    /// RedLike thresholds as fractions of the buffer, and max drop prob.
    double red_min_frac = 0.2;
    double red_max_frac = 0.8;
    double red_p_max = 0.1;
    /// EWMA weight for the averaged queue length.
    double red_weight = 0.05;
    std::uint64_t seed = 1;
};

struct BottleneckStats {
    std::uint64_t arrived = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    double max_queue = 0;
};

class Bottleneck {
public:
    Bottleneck(sim::Engine& engine, const BottleneckConfig& config);

    Bottleneck(const Bottleneck&) = delete;
    Bottleneck& operator=(const Bottleneck&) = delete;

    /// Called when a packet finishes service.
    std::function<void(const FlowPacket&)> on_delivered;
    /// Called the instant a packet is dropped (either the arrival or a
    /// random victim already queued).
    std::function<void(const FlowPacket&)> on_dropped;

    void enqueue(FlowPacket p);

    [[nodiscard]] std::size_t queue_length() const noexcept { return queue_.size(); }
    [[nodiscard]] double averaged_queue() const noexcept { return avg_queue_; }
    [[nodiscard]] const BottleneckStats& stats() const noexcept { return stats_; }

private:
    void start_service();
    void service_done();
    [[nodiscard]] bool red_admits(); // updates the EWMA, rolls the dice

    sim::Engine& engine_;
    BottleneckConfig config_;
    rng::DefaultEngine gen_;
    std::deque<FlowPacket> queue_;
    bool serving_ = false;
    double avg_queue_ = 0.0;
    BottleneckStats stats_;
};

} // namespace routesync::tcpsync
