#include "tcpsync/bottleneck.hpp"

#include <stdexcept>

namespace routesync::tcpsync {

Bottleneck::Bottleneck(sim::Engine& engine, const BottleneckConfig& config)
    : engine_{engine}, config_{config}, gen_{config.seed} {
    if (config_.rate_pps <= 0.0) {
        throw std::invalid_argument{"Bottleneck: rate must be positive"};
    }
    if (config_.buffer_packets < 1) {
        throw std::invalid_argument{"Bottleneck: buffer must hold >= 1 packet"};
    }
}

bool Bottleneck::red_admits() {
    avg_queue_ = (1.0 - config_.red_weight) * avg_queue_ +
                 config_.red_weight * static_cast<double>(queue_.size());
    const double min_th = config_.red_min_frac * config_.buffer_packets;
    const double max_th = config_.red_max_frac * config_.buffer_packets;
    if (avg_queue_ <= min_th) {
        return true;
    }
    if (avg_queue_ >= max_th) {
        return false;
    }
    const double p =
        config_.red_p_max * (avg_queue_ - min_th) / (max_th - min_th);
    return !rng::bernoulli(gen_, p);
}

void Bottleneck::enqueue(FlowPacket p) {
    ++stats_.arrived;
    if (static_cast<double>(queue_.size()) > stats_.max_queue) {
        stats_.max_queue = static_cast<double>(queue_.size());
    }

    if (config_.policy == DropPolicy::RedLike && !red_admits()) {
        ++stats_.dropped;
        if (on_dropped) {
            on_dropped(p);
        }
        return;
    }

    const bool full =
        queue_.size() >= static_cast<std::size_t>(config_.buffer_packets);
    if (full) {
        // Random-drop evicts a queued packet and admits the arrival — but
        // never the head while it is in service (it is already on the
        // wire).
        const std::size_t first_evictable = serving_ ? 1 : 0;
        if (config_.policy == DropPolicy::RandomDrop &&
            queue_.size() > first_evictable) {
            const auto victim = static_cast<std::size_t>(rng::uniform_u64(
                gen_, first_evictable, queue_.size() - 1));
            const FlowPacket evicted = queue_[victim];
            queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(victim));
            ++stats_.dropped;
            if (on_dropped) {
                on_dropped(evicted);
            }
        } else {
            ++stats_.dropped;
            if (on_dropped) {
                on_dropped(p);
            }
            return;
        }
    }

    queue_.push_back(p);
    if (!serving_) {
        start_service();
    }
}

void Bottleneck::start_service() {
    serving_ = true;
    engine_.schedule_after(sim::SimTime::seconds(1.0 / config_.rate_pps),
                           [this] { service_done(); });
}

void Bottleneck::service_done() {
    // The head packet completes service.
    if (!queue_.empty()) {
        const FlowPacket done = queue_.front();
        queue_.pop_front();
        ++stats_.delivered;
        if (on_delivered) {
            on_delivered(done);
        }
    }
    if (!queue_.empty()) {
        start_service();
    } else {
        serving_ = false;
    }
}

} // namespace routesync::tcpsync
