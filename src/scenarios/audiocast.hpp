// The "audiocast" scenario — the synthetic counterpart of the paper's
// Figure 3 (December 1992 packet-video workshop: 30-second-periodic audio
// outages of several seconds, 50-95 % loss inside the spikes, plus random
// single-packet blips).
//
// Topology:
//
//   audio src -- R1 ===bottleneck=== R2 -- audio sink
//   bg src ----/                       \---- bg sink
//                |  X |
//              C1..Ck core routers running synchronized RIP (30 s)
//
// The periodic outages come from the synchronized RIP storm stalling the
// blocking route processors; the random blips come from Poisson background
// traffic occasionally overflowing the bottleneck queue.
#pragma once

#include <memory>
#include <vector>

#include "apps/apps.hpp"
#include "net/net.hpp"
#include "routing/routing.hpp"
#include "sim/sim.hpp"

namespace routesync::obs {
class RunContext;
}

namespace routesync::scenarios {

struct AudiocastConfig {
    int core_routers = 4;
    int filler_routes = 300;
    double per_route_cost_ms = 1.0;
    double jitter_sec = 0.05; ///< below breakup threshold: stays synchronized
    bool blocking_cpu = true;
    double bottleneck_bps = 1.5e6; ///< T1 tunnel
    std::size_t bottleneck_queue = 12;
    double background_pps = 220.0; ///< Poisson cross traffic (512 B)
    std::uint64_t seed = 1;
};

class AudiocastScenario {
public:
    /// `obs` (optional, not owned, must outlive the scenario): its tracer
    /// is attached to the engine before the network is built.
    explicit AudiocastScenario(const AudiocastConfig& config,
                               obs::RunContext* obs = nullptr);

    /// Publishes the run's router/DV stats into `ctx`'s metrics registry.
    void collect_metrics(obs::RunContext& ctx) const;

    [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
    [[nodiscard]] net::Network& network() noexcept { return *network_; }
    [[nodiscard]] net::Host& audio_src() noexcept { return *audio_src_; }
    [[nodiscard]] net::Host& audio_dst() noexcept { return *audio_dst_; }
    [[nodiscard]] net::Host& bg_src() noexcept { return *bg_src_; }
    [[nodiscard]] net::Host& bg_dst() noexcept { return *bg_dst_; }
    [[nodiscard]] sim::SimTime routing_start() const noexcept { return routing_start_; }

private:
    sim::Engine engine_;
    std::unique_ptr<net::Network> network_;
    net::Host* audio_src_ = nullptr;
    net::Host* audio_dst_ = nullptr;
    net::Host* bg_src_ = nullptr;
    net::Host* bg_dst_ = nullptr;
    std::vector<std::unique_ptr<routing::DistanceVectorAgent>> agents_;
    sim::SimTime routing_start_;
};

} // namespace routesync::scenarios
