#include "scenarios/scenario_sweep.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "obs/trace_sink.hpp"
#include "obs/tracer.hpp"
#include "parallel/task_pool.hpp"

namespace routesync::scenarios {

namespace {

/// Decodes submission index -> (buffer, load, trial), buffer-major.
struct CellCoords {
    std::size_t buffer_idx;
    std::size_t load_idx;
    int trial;
};

CellCoords decode(std::size_t index, std::size_t n_loads, int trials) {
    const auto per_buffer = n_loads * static_cast<std::size_t>(trials);
    CellCoords c{};
    c.buffer_idx = index / per_buffer;
    const std::size_t rem = index % per_buffer;
    c.load_idx = rem / static_cast<std::size_t>(trials);
    c.trial = static_cast<int>(rem % static_cast<std::size_t>(trials));
    return c;
}

} // namespace

ScenarioSweepResult run_scenario_sweep(const ScenarioSweepConfig& config) {
    if (config.buffers.empty()) {
        throw std::invalid_argument{"scenario sweep: no buffer sizes"};
    }
    if (config.loads.empty()) {
        throw std::invalid_argument{"scenario sweep: no load multipliers"};
    }
    if (config.trials < 1) {
        throw std::invalid_argument{"scenario sweep: trials must be >= 1"};
    }

    const std::size_t count = config.buffers.size() * config.loads.size() *
                              static_cast<std::size_t>(config.trials);
    ScenarioSweepResult sweep;
    sweep.cells.resize(count);

    // One cell = one chunk: cells are whole simulations (seconds, not
    // microseconds), so per-cell claims give the stealing its finest
    // granularity and the batched-kernel chunking the PM sweeps need
    // buys nothing here.
    parallel::TaskPool pool{parallel::TaskPoolOptions{config.jobs}};
    sweep.jobs = pool.jobs();
    sweep.steals = pool.run(count, 1, [&](std::size_t lo, std::size_t len) {
        for (std::size_t i = lo; i < lo + len; ++i) {
            const CellCoords at = decode(i, config.loads.size(), config.trials);
            ScenarioSweepCell& cell = sweep.cells[i];
            cell.buffer = config.buffers[at.buffer_idx];
            cell.load = config.loads[at.load_idx];
            cell.trial = at.trial;
            cell.seed = config.base.seed + static_cast<std::uint64_t>(at.trial);

            SharedLanScenarioConfig cfg = config.base;
            cfg.queue_packets = cell.buffer;
            cfg.bg_burst = static_cast<int>(
                std::lround(static_cast<double>(config.base.bg_burst) * cell.load));
            if (cfg.bg_burst < 0) {
                cfg.bg_burst = 0;
            }
            cfg.seed = cell.seed;

            if (config.hash_traces) {
                obs::HashingSink sink;
                obs::Tracer tracer{sink};
                cfg.tracer = &tracer;
                cell.result = run_shared_lan_scenario(cfg);
                cell.trace_digest = sink.digest();
                cell.trace_events = sink.events_seen();
            } else {
                cfg.tracer = nullptr;
                cell.result = run_shared_lan_scenario(cfg);
            }
        }
    });

    // Fold the per-cell digests into one witness for the whole sweep.
    std::uint64_t h = 14695981039346656037ULL;
    for (const ScenarioSweepCell& cell : sweep.cells) {
        for (int byte = 0; byte < 8; ++byte) {
            h ^= (cell.trace_digest >> (8 * byte)) & 0xffU;
            h *= 1099511628211ULL;
        }
    }
    sweep.combined_digest = h;
    return sweep;
}

std::vector<std::size_t> parse_buffer_list(const std::string& spec) {
    const auto parse_one = [&](const std::string& tok) -> std::size_t {
        char* end = nullptr;
        const long v = std::strtol(tok.c_str(), &end, 10);
        if (end == tok.c_str() || *end != '\0' || v <= 0) {
            throw std::invalid_argument{
                "--buffers wants positive integers ('LO..HI' or 'a,b,c'), got '" +
                spec + "'"};
        }
        return static_cast<std::size_t>(v);
    };
    std::vector<std::size_t> buffers;
    if (const auto dots = spec.find(".."); dots != std::string::npos) {
        const std::size_t lo = parse_one(spec.substr(0, dots));
        const std::size_t hi = parse_one(spec.substr(dots + 2));
        if (lo > hi) {
            throw std::invalid_argument{"--buffers range is empty: '" + spec +
                                        "'"};
        }
        // Doubling ladder, HI always included: "2..64" -> 2,4,...,64 and
        // "2..48" -> 2,4,...,32,48 (a buffer scan is log-shaped; the top
        // end is where drop-tail and RED finally agree).
        for (std::size_t b = lo; b < hi; b *= 2) {
            buffers.push_back(b);
        }
        buffers.push_back(hi);
        return buffers;
    }
    std::size_t start = 0;
    while (start <= spec.size()) {
        const auto comma = spec.find(',', start);
        const auto len =
            (comma == std::string::npos ? spec.size() : comma) - start;
        buffers.push_back(parse_one(spec.substr(start, len)));
        if (comma == std::string::npos) {
            break;
        }
        start = comma + 1;
    }
    return buffers;
}

std::vector<double> parse_load_list(const std::string& spec) {
    std::vector<double> loads;
    std::size_t start = 0;
    while (start <= spec.size()) {
        const auto comma = spec.find(',', start);
        const auto len =
            (comma == std::string::npos ? spec.size() : comma) - start;
        const std::string tok = spec.substr(start, len);
        char* end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        if (end == tok.c_str() || *end != '\0' || v < 0.0) {
            throw std::invalid_argument{
                "--loads wants non-negative multipliers 'a,b,c', got '" + spec +
                "'"};
        }
        loads.push_back(v);
        if (comma == std::string::npos) {
            break;
        }
        start = comma + 1;
    }
    return loads;
}

} // namespace routesync::scenarios
