#include "scenarios/registry.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "apps/apps.hpp"
#include "net/elements/queue_element.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "scenarios/audiocast.hpp"
#include "scenarios/nearnet.hpp"
#include "scenarios/scenario_sweep.hpp"
#include "scenarios/shared_lan_scenario.hpp"

namespace routesync::scenarios {

namespace {

double flag_d(const ScenarioFlags& flags, const std::string& key,
              double fallback) {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atof(it->second.c_str());
}

int flag_i(const ScenarioFlags& flags, const std::string& key, int fallback) {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atoi(it->second.c_str());
}

std::string flag_s(const ScenarioFlags& flags, const std::string& key,
                   const std::string& fallback = {}) {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
}

// ---- builtin: nearnet ---------------------------------------------------
// The Figure 1/2 testbed with a ping probe; prints a loss summary. The
// full paper reproduction (series, autocorrelation, checks) stays in
// bench/fig01/fig02 — this runner is the interactive knob-turning entry.
int run_nearnet(const ScenarioFlags& flags) {
    NearnetConfig cfg;
    cfg.core_routers = flag_i(flags, "core-routers", cfg.core_routers);
    cfg.filler_routes = flag_i(flags, "filler-routes", cfg.filler_routes);
    cfg.update_period_sec = flag_d(flags, "period", cfg.update_period_sec);
    cfg.jitter_sec = flag_d(flags, "jitter", cfg.jitter_sec);
    cfg.blocking_cpu = !flags.contains("non-blocking");
    cfg.incremental_updates = flags.contains("incremental");
    cfg.seed = static_cast<std::uint64_t>(flag_i(flags, "seed", 1));
    NearnetScenario s{cfg};

    apps::PingConfig pc;
    pc.dst = s.dst().id();
    pc.count = flag_i(flags, "pings", 1000);
    apps::PingApp ping{s.src(), pc};
    ping.start(s.routing_start() + sim::SimTime::seconds(200));
    const double horizon = flag_d(flags, "max-time", 1500.0);
    s.engine().run_until(sim::SimTime::seconds(horizon));

    std::printf("scenario,nearnet\n");
    std::printf("core_routers,%d\n", cfg.core_routers);
    std::printf("blocking_cpu,%d\n", cfg.blocking_cpu ? 1 : 0);
    std::printf("jitter_s,%g\n", cfg.jitter_sec);
    std::printf("pings_sent,%zu\n", ping.rtts().size());
    std::printf("pings_lost,%d\n", ping.lost());
    std::printf("loss_fraction,%.4f\n", ping.loss_fraction());
    return 0;
}

// ---- builtin: audiocast -------------------------------------------------
int run_audiocast(const ScenarioFlags& flags) {
    AudiocastConfig cfg;
    cfg.core_routers = flag_i(flags, "core-routers", cfg.core_routers);
    cfg.jitter_sec = flag_d(flags, "jitter", cfg.jitter_sec);
    cfg.background_pps = flag_d(flags, "bg-pps", cfg.background_pps);
    cfg.seed = static_cast<std::uint64_t>(flag_i(flags, "seed", 1));
    AudiocastScenario s{cfg};

    const double horizon = flag_d(flags, "max-time", 720.0);
    apps::CbrConfig cc;
    cc.dst = s.audio_dst().id();
    cc.packets_per_second = 50.0;
    cc.stop_at = sim::SimTime::seconds(horizon - 15.0);
    apps::CbrSource src{s.audio_src(), cc};
    apps::AudioSink sink{s.audio_dst(), sim::SimTime::seconds(0.02)};
    apps::BackgroundConfig bg;
    bg.dst = s.bg_dst().id();
    bg.mean_packets_per_second = 270.0;
    bg.stop_at = cc.stop_at;
    bg.seed = 99;
    apps::BackgroundTraffic cross{s.bg_src(), bg};

    const auto t0 = s.routing_start() + sim::SimTime::seconds(95);
    src.start(t0);
    cross.start(t0);
    s.engine().run_until(sim::SimTime::seconds(horizon));

    const auto spikes = sink.outages_longer_than(0.5);
    std::printf("scenario,audiocast\n");
    std::printf("jitter_s,%g\n", cfg.jitter_sec);
    std::printf("packets_sent,%llu\n",
                static_cast<unsigned long long>(src.sent()));
    std::printf("packets_lost,%llu\n",
                static_cast<unsigned long long>(sink.lost()));
    std::printf("outages,%zu\n", sink.outages().size());
    std::printf("periodic_spikes,%zu\n", spikes.size());
    return 0;
}

// ---- builtin: shared_lan ------------------------------------------------
// The RED-vs-drop-tail knob (--queue red|droptail); see
// shared_lan_scenario.hpp for the mechanism under test.
SharedLanScenarioConfig parse_shared_lan_config(const ScenarioFlags& flags) {
    SharedLanScenarioConfig cfg;
    cfg.n = flag_i(flags, "n", cfg.n);
    cfg.tp = sim::SimTime::seconds(flag_d(flags, "tp", cfg.tp.sec()));
    cfg.tr = sim::SimTime::seconds(flag_d(flags, "tr", cfg.tr.sec()));
    cfg.tc = sim::SimTime::seconds(flag_d(flags, "tc", cfg.tc.sec()));
    const std::string queue = flag_s(flags, "queue", "droptail");
    const auto disc = net::elements::queue_disc_from_name(queue);
    if (!disc.has_value()) {
        throw std::invalid_argument{
            "shared_lan: unknown --queue '" + queue + "' (want red|droptail)"};
    }
    cfg.queue_disc = *disc;
    cfg.queue_packets = static_cast<std::size_t>(
        flag_i(flags, "queue-cap", static_cast<int>(cfg.queue_packets)));
    cfg.red.min_th = flag_d(flags, "red-min", cfg.red.min_th);
    cfg.red.max_th = flag_d(flags, "red-max", cfg.red.max_th);
    cfg.red.max_p = flag_d(flags, "red-maxp", cfg.red.max_p);
    cfg.red.weight = flag_d(flags, "red-weight", cfg.red.weight);
    cfg.bg_burst = flag_i(flags, "bg-burst", cfg.bg_burst);
    cfg.bg_period =
        sim::SimTime::seconds(flag_d(flags, "bg-period", cfg.bg_period.sec()));
    cfg.max_time =
        sim::SimTime::seconds(flag_d(flags, "max-time", cfg.max_time.sec()));
    cfg.seed = static_cast<std::uint64_t>(flag_i(flags, "seed", 1));
    cfg.monitor = flags.contains("monitor");
    cfg.sync_threshold = flag_d(flags, "sync-threshold", cfg.sync_threshold);
    cfg.sync_hysteresis = flag_d(flags, "sync-hysteresis", cfg.sync_hysteresis);
    if (flag_s(flags, "dispatch", "fast") == "virtual") {
        cfg.dispatch = net::elements::DispatchMode::Virtual;
    }
    return cfg;
}

/// Shared-LAN flags common to single runs and sweeps, recorded in every
/// manifest so a run is reconstructible from its artifact alone.
void set_shared_lan_manifest_config(obs::Manifest& m,
                                    const SharedLanScenarioConfig& cfg) {
    // std::string{} forced: a bare const char* would select the bool
    // overload of set_config.
    m.set_config("queue",
                 std::string{net::elements::queue_disc_name(cfg.queue_disc)});
    m.set_config("n", cfg.n);
    m.set_config("tp_sec", cfg.tp.sec());
    m.set_config("tr_sec", cfg.tr.sec());
    m.set_config("tc_sec", cfg.tc.sec());
    m.set_config("queue_packets", static_cast<std::uint64_t>(cfg.queue_packets));
    m.set_config("bg_burst", cfg.bg_burst);
    m.set_config("bg_period_sec", cfg.bg_period.sec());
    m.set_config("max_time_sec", cfg.max_time.sec());
    m.set_config("monitor", cfg.monitor);
    if (cfg.monitor) {
        m.set_config("sync_threshold", cfg.sync_threshold);
        m.set_config("sync_hysteresis", cfg.sync_hysteresis);
    }
}

int run_shared_lan_trials(const ScenarioFlags& flags,
                          const SharedLanScenarioConfig& cfg, int trials);

int run_shared_lan(const ScenarioFlags& flags) {
    SharedLanScenarioConfig cfg = parse_shared_lan_config(flags);
    const int trials = flag_i(flags, "trials", 1);
    if (trials < 1) {
        throw std::invalid_argument{"shared_lan: --trials must be >= 1"};
    }
    if (trials > 1) {
        return run_shared_lan_trials(flags, cfg, trials);
    }

    const SharedLanScenarioResult r = run_shared_lan_scenario(cfg);
    std::printf("scenario,shared_lan\n");
    std::printf("queue,%s\n", net::elements::queue_disc_name(cfg.queue_disc));
    std::printf("n,%d\n", cfg.n);
    std::printf("end_time_s,%.3f\n", r.end_time_s);
    std::printf("frames_offered,%llu\n",
                static_cast<unsigned long long>(r.frames_offered));
    std::printf("frames_delivered,%llu\n",
                static_cast<unsigned long long>(r.frames_delivered));
    std::printf("collisions,%llu\n",
                static_cast<unsigned long long>(r.collisions));
    std::printf("drops_queue,%llu\n",
                static_cast<unsigned long long>(r.drops_queue_full));
    std::printf("red_early_drops,%llu\n",
                static_cast<unsigned long long>(r.red_early_drops));
    std::printf("red_forced_drops,%llu\n",
                static_cast<unsigned long long>(r.red_forced_drops));
    std::printf("updates_sent,%llu\n",
                static_cast<unsigned long long>(r.updates_sent));
    std::printf("updates_heard,%llu\n",
                static_cast<unsigned long long>(r.updates_heard));
    std::printf("update_delivery_rate,%.4f\n",
                r.updates_sent == 0
                    ? 0.0
                    : static_cast<double>(r.updates_heard) /
                          (static_cast<double>(r.updates_sent) *
                           static_cast<double>(cfg.n - 1)));
    std::printf("largest_cluster,%d\n", r.largest_cluster);
    std::printf("largest_cluster_time_s,%s\n",
                r.largest_cluster_time_s
                    ? std::to_string(*r.largest_cluster_time_s).c_str()
                    : "none");
    std::printf("full_sync_time_s,%s\n",
                r.full_sync_time_s ? std::to_string(*r.full_sync_time_s).c_str()
                                   : "none");
    if (r.sync.has_value()) {
        const obs::SyncReport& s = *r.sync;
        std::printf("sync_r_last,%.6f\n", s.r_last);
        std::printf("sync_r_max,%.6f\n", s.r_max);
        std::printf("sync_transitions,%llu\n",
                    static_cast<unsigned long long>(s.transitions));
        std::printf("sync_time_to_sync_s,%s\n",
                    s.time_to_sync_sec >= 0.0
                        ? std::to_string(s.time_to_sync_sec).c_str()
                        : "none");
        std::printf("sync_entropy_last,%.6f\n", s.entropy_last);
        std::printf("sync_largest_fraction,%.4f\n", s.largest_fraction_last);
        std::printf("coupling_edges,%zu\n", r.sync_coupling.edge_count());
        std::printf("coupling_total_weight,%llu\n",
                    static_cast<unsigned long long>(
                        r.sync_coupling.total_weight()));
    }

    // --out FILE: a run manifest whose config embeds the element graph's
    // wire spec — the topology that ran, reconstructible via wire().
    const std::string out = flag_s(flags, "out");
    if (!out.empty()) {
        obs::Manifest m;
        m.tool = "scenario/shared_lan";
        m.description =
            "periodic updates on a congested CSMA/CD LAN (" +
            std::string{net::elements::queue_disc_name(cfg.queue_disc)} +
            " station queues)";
        m.seeds = {cfg.seed};
        set_shared_lan_manifest_config(m, cfg);
        m.set_config("elements.wire_spec", r.wire_spec);

        obs::MetricsRegistry reg;
        reg.add("lan.frames_offered", r.frames_offered);
        reg.add("lan.frames_delivered", r.frames_delivered);
        reg.add("lan.collisions", r.collisions);
        reg.add("lan.drops_queue", r.drops_queue_full);
        reg.add("agents.updates_sent", r.updates_sent);
        reg.add("agents.updates_heard", r.updates_heard);
        if (r.sync.has_value()) {
            // Same names the engine path publishes (finalize_metrics),
            // so sync.* readers work across both backends.
            const obs::SyncReport& s = *r.sync;
            reg.add("sync.rearms", s.rearms);
            reg.add("sync.transitions", s.transitions);
            reg.add("sync.coupling_edges",
                    static_cast<std::uint64_t>(r.sync_coupling.edge_count()));
            reg.set_gauge("sync.r_last", s.r_last);
            reg.set_gauge("sync.r_max", s.r_max);
            reg.set_gauge("sync.entropy_last", s.entropy_last);
            reg.set_gauge("sync.largest_fraction_last", s.largest_fraction_last);
            if (s.time_to_sync_sec >= 0.0) {
                reg.add("sync.synced_runs", 1);
                reg.observe("sync.time_to_sync_sec", s.time_to_sync_sec);
            }
        }
        m.metrics = reg.snapshot();
        m.sim_seconds = r.end_time_s;
        m.write(out);
    }
    return 0;
}

/// One sweep cell's counters folded into `reg` — called in submission
/// order, so the merged snapshot is jobs-invariant.
void merge_cell_metrics(obs::MetricsRegistry& reg,
                        const ScenarioSweepCell& cell) {
    const SharedLanScenarioResult& r = cell.result;
    reg.add("lan.frames_offered", r.frames_offered);
    reg.add("lan.frames_delivered", r.frames_delivered);
    reg.add("lan.collisions", r.collisions);
    reg.add("lan.drops_queue", r.drops_queue_full);
    reg.add("agents.updates_sent", r.updates_sent);
    reg.add("agents.updates_heard", r.updates_heard);
    reg.add("sweep.trace_events", cell.trace_events);
    if (r.full_sync_time_s.has_value()) {
        reg.add("sweep.synced_cells", 1);
        reg.observe("sweep.full_sync_time_sec", *r.full_sync_time_s);
    }
}

/// The per-cell result row shared by the --trials table and the sweep
/// table (the caller prints the leading buffer/load columns).
void print_cell_row(const ScenarioSweepCell& cell) {
    const SharedLanScenarioResult& r = cell.result;
    std::printf("%d,%llu,%.3f,%llu,%llu,%llu,%llu,%d,%s,%llu,0x%016llx\n",
                cell.trial, static_cast<unsigned long long>(cell.seed),
                r.end_time_s,
                static_cast<unsigned long long>(r.frames_delivered),
                static_cast<unsigned long long>(r.drops_queue_full),
                static_cast<unsigned long long>(r.updates_sent),
                static_cast<unsigned long long>(r.updates_heard),
                r.largest_cluster,
                r.full_sync_time_s ? std::to_string(*r.full_sync_time_s).c_str()
                                   : "none",
                static_cast<unsigned long long>(cell.trace_events),
                static_cast<unsigned long long>(cell.trace_digest));
}

int run_shared_lan_trials(const ScenarioFlags& flags,
                          const SharedLanScenarioConfig& cfg, int trials) {
    ScenarioSweepConfig sc;
    sc.base = cfg;
    sc.buffers = {cfg.queue_packets};
    sc.loads = {1.0};
    sc.trials = trials;
    sc.jobs = static_cast<std::size_t>(flag_i(flags, "jobs", 1));
    const ScenarioSweepResult sweep = run_scenario_sweep(sc);

    // Stdout carries no jobs/steals: `--jobs N` must be byte-identical
    // to `--jobs 1` (the repo-wide determinism contract).
    std::printf("scenario,shared_lan\n");
    std::printf("queue,%s\n", net::elements::queue_disc_name(cfg.queue_disc));
    std::printf("n,%d\n", cfg.n);
    std::printf("trials,%d\n", trials);
    std::printf("trial,seed,end_time_s,frames_delivered,drops_queue,"
                "updates_sent,updates_heard,largest_cluster,full_sync_time_s,"
                "trace_events,trace_digest\n");
    int synced = 0;
    double sim_seconds = 0.0;
    for (const ScenarioSweepCell& cell : sweep.cells) {
        print_cell_row(cell);
        synced += cell.result.full_sync_time_s.has_value() ? 1 : 0;
        sim_seconds += cell.result.end_time_s;
    }
    std::printf("synced_trials,%d\n", synced);
    std::printf("combined_digest,0x%016llx\n",
                static_cast<unsigned long long>(sweep.combined_digest));
    std::fprintf(stderr, "shared_lan: %d trials on %zu workers (%zu steals)\n",
                 trials, sweep.jobs, sweep.steals);

    const std::string out = flag_s(flags, "out");
    if (!out.empty()) {
        obs::Manifest m;
        m.tool = "scenario/shared_lan";
        m.description = "periodic updates on a congested CSMA/CD LAN, " +
                        std::to_string(trials) + " trials";
        for (const ScenarioSweepCell& cell : sweep.cells) {
            m.seeds.push_back(cell.seed);
        }
        m.jobs = sweep.jobs;
        set_shared_lan_manifest_config(m, cfg);
        m.set_config("trials", trials);
        char digest[32];
        std::snprintf(digest, sizeof digest, "0x%016llx",
                      static_cast<unsigned long long>(sweep.combined_digest));
        m.set_config("combined_digest", std::string{digest});
        obs::MetricsRegistry reg;
        for (const ScenarioSweepCell& cell : sweep.cells) {
            merge_cell_metrics(reg, cell);
        }
        m.metrics = reg.snapshot();
        m.sim_seconds = sim_seconds;
        m.write(out);
    }
    return 0;
}

ScenarioEntry builtin(std::string name, std::string summary,
                      std::string flags_help,
                      std::function<int(const ScenarioFlags&)> run) {
    ScenarioEntry e;
    e.name = std::move(name);
    e.summary = std::move(summary);
    e.flags_help = std::move(flags_help);
    e.run = std::move(run);
    return e;
}

ScenarioEntry external(std::string name, std::string summary,
                       std::string binary) {
    ScenarioEntry e;
    e.name = std::move(name);
    e.summary = std::move(summary);
    e.binary = std::move(binary);
    return e;
}

} // namespace

int run_shared_lan_sweep(const ScenarioFlags& flags) {
    ScenarioSweepConfig sc;
    sc.base = parse_shared_lan_config(flags);
    sc.buffers = parse_buffer_list(
        flag_s(flags, "buffers", std::to_string(sc.base.queue_packets)));
    sc.loads = parse_load_list(flag_s(flags, "loads", "1"));
    sc.trials = flag_i(flags, "trials", 1);
    if (sc.trials < 1) {
        throw std::invalid_argument{
            "scenario sweep: --trials must be >= 1"};
    }
    sc.jobs = static_cast<std::size_t>(flag_i(flags, "jobs", 1));
    const ScenarioSweepResult sweep = run_scenario_sweep(sc);

    // Stdout carries no jobs/steals: `--jobs N` must be byte-identical
    // to `--jobs 1` (the repo-wide determinism contract).
    std::printf("scenario_sweep,shared_lan\n");
    std::printf("queue,%s\n",
                net::elements::queue_disc_name(sc.base.queue_disc));
    std::printf("buffers");
    for (const std::size_t b : sc.buffers) {
        std::printf(",%zu", b);
    }
    std::printf("\nloads");
    for (const double l : sc.loads) {
        std::printf(",%g", l);
    }
    std::printf("\ntrials,%d\n", sc.trials);
    std::printf("cells,%zu\n", sweep.cells.size());
    std::printf("buffer,load,trial,seed,end_time_s,frames_delivered,"
                "drops_queue,updates_sent,updates_heard,largest_cluster,"
                "full_sync_time_s,trace_events,trace_digest\n");
    int synced = 0;
    double sim_seconds = 0.0;
    std::uint64_t transmissions = 0;
    for (const ScenarioSweepCell& cell : sweep.cells) {
        std::printf("%zu,%g,", cell.buffer, cell.load);
        print_cell_row(cell);
        synced += cell.result.full_sync_time_s.has_value() ? 1 : 0;
        sim_seconds += cell.result.end_time_s;
        transmissions += cell.result.frames_delivered;
    }
    std::printf("synced_cells,%d\n", synced);
    std::printf("transmissions_checksum,%llu\n",
                static_cast<unsigned long long>(transmissions));
    std::printf("combined_digest,0x%016llx\n",
                static_cast<unsigned long long>(sweep.combined_digest));
    std::fprintf(stderr,
                 "scenario sweep: %zu cells on %zu workers (%zu steals)\n",
                 sweep.cells.size(), sweep.jobs, sweep.steals);

    const std::string out = flag_s(flags, "out");
    if (!out.empty()) {
        obs::Manifest m;
        m.tool = "scenario/shared_lan_sweep";
        m.description =
            "buffer x load x trial grid of shared-LAN runs (" +
            std::string{net::elements::queue_disc_name(sc.base.queue_disc)} +
            " station queues)";
        m.seeds = {sc.base.seed};
        m.jobs = sweep.jobs;
        set_shared_lan_manifest_config(m, sc.base);
        m.set_config("buffers", flag_s(flags, "buffers",
                                       std::to_string(sc.base.queue_packets)));
        m.set_config("loads", flag_s(flags, "loads", "1"));
        m.set_config("trials", sc.trials);
        m.set_config("cells", static_cast<std::uint64_t>(sweep.cells.size()));
        char digest[32];
        std::snprintf(digest, sizeof digest, "0x%016llx",
                      static_cast<unsigned long long>(sweep.combined_digest));
        m.set_config("combined_digest", std::string{digest});
        obs::MetricsRegistry reg;
        for (const ScenarioSweepCell& cell : sweep.cells) {
            merge_cell_metrics(reg, cell);
        }
        m.metrics = reg.snapshot();
        m.sim_seconds = sim_seconds;
        m.write(out);
    }
    return 0;
}

ScenarioRegistry& ScenarioRegistry::instance() {
    static ScenarioRegistry registry;
    return registry;
}

void ScenarioRegistry::add(ScenarioEntry entry) {
    if (entry.name.empty()) {
        throw std::invalid_argument{"ScenarioRegistry: empty scenario name"};
    }
    if (entry.run == nullptr && entry.binary.empty()) {
        throw std::invalid_argument{"ScenarioRegistry: entry '" + entry.name +
                                    "' is neither builtin nor external"};
    }
    if (find(entry.name) != nullptr) {
        throw std::invalid_argument{"ScenarioRegistry: duplicate scenario '" +
                                    entry.name + "'"};
    }
    entries_.push_back(std::move(entry));
}

const ScenarioEntry* ScenarioRegistry::find(const std::string& name) const {
    for (const ScenarioEntry& e : entries_) {
        if (e.name == name) {
            return &e;
        }
    }
    return nullptr;
}

int ScenarioRegistry::run(const std::string& name,
                          const ScenarioFlags& flags) const {
    const ScenarioEntry* entry = find(name);
    if (entry == nullptr) {
        throw std::invalid_argument{
            "unknown scenario '" + name +
            "' (run `routesync scenario list` for the table)"};
    }
    if (entry->is_builtin()) {
        return entry->run(flags);
    }
    // External: exec the standalone binary, forwarding the flags (minus
    // the dispatch-only --bin-dir) verbatim.
    std::string cmd = flag_s(flags, "bin-dir", ".") + "/" + entry->binary;
    for (const auto& [key, value] : flags) {
        if (key == "bin-dir") {
            continue;
        }
        cmd += " --" + key;
        if (value != "1") {
            cmd += " " + value;
        }
    }
    const int status = std::system(cmd.c_str()); // NOLINT(cert-env33-c)
    if (status < 0) {
        throw std::runtime_error{"scenario run: failed to exec " + cmd};
    }
    return status == 0 ? 0 : 1;
}

void register_builtin_scenarios() {
    ScenarioRegistry& reg = ScenarioRegistry::instance();
    if (reg.find("nearnet") != nullptr) {
        return; // already populated
    }
    reg.add(builtin(
        "nearnet",
        "Fig 1/2 testbed: pings through synchronized IGRP core routers",
        "--core-routers --filler-routes --period --jitter --pings "
        "--max-time --seed [--non-blocking] [--incremental]",
        run_nearnet));
    reg.add(builtin(
        "audiocast",
        "Fig 3 testbed: audio outages under synchronized RIP storms",
        "--core-routers --jitter --bg-pps --max-time --seed",
        run_audiocast));
    reg.add(builtin(
        "shared_lan",
        "periodic updates on a congested CSMA/CD LAN; RED vs drop-tail "
        "station queues",
        "--queue red|droptail --n --tp --tr --tc --queue-cap --red-min "
        "--red-max --red-maxp --red-weight --bg-burst --bg-period "
        "--max-time --seed [--trials K [--jobs N]] [--dispatch fast|virtual] "
        "[--monitor [--sync-threshold R] [--sync-hysteresis H]] "
        "[--out MANIFEST]",
        run_shared_lan));
    // The standalone paper figures and examples, addressable through the
    // same table (resolved against --bin-dir, default ".": run from the
    // build directory).
    reg.add(external("fig1", "ping losses from synchronized IGRP updates",
                     "bench/fig01_ping_losses"));
    reg.add(external("fig2", "ping-loss autocorrelation",
                     "bench/fig02_autocorrelation"));
    reg.add(external("fig3", "audio outages under synchronized RIP",
                     "bench/fig03_audio_outages"));
    reg.add(external("fig4", "evolution of synchronization clusters",
                     "bench/fig04_sync_evolution"));
    reg.add(external("fig5", "close-up of a cluster merge",
                     "bench/fig05_cluster_closeup"));
    reg.add(external("fig6", "cluster-size transition graph",
                     "bench/fig06_cluster_graph"));
    reg.add(external("fig7", "unsynchronized-start jitter sweep",
                     "bench/fig07_unsync_start_sweep"));
    reg.add(external("fig8", "synchronized-start jitter sweep",
                     "bench/fig08_sync_start_sweep"));
    reg.add(external("ablation_shared_lan",
                     "PM workload over real CSMA/CD (Section 3 ablation)",
                     "bench/ablation_shared_lan"));
    reg.add(external("quickstart", "minimal end-to-end simulation example",
                     "examples/quickstart"));
    reg.add(external("routing_storm", "routing-storm walkthrough example",
                     "examples/routing_storm"));
    reg.add(external("jitter_tuning", "jitter-tuning walkthrough example",
                     "examples/jitter_tuning"));
    reg.add(external("triggered_wave", "triggered-update wave example",
                     "examples/triggered_wave"));
    reg.add(external("tcp_global_sync", "TCP global synchronization example",
                     "examples/tcp_global_sync"));
}

} // namespace routesync::scenarios
