#include "scenarios/scenario_metrics.hpp"

namespace routesync::scenarios {

void collect_network_metrics(
    const net::Network& network,
    const std::vector<std::unique_ptr<routing::DistanceVectorAgent>>& agents,
    obs::MetricsRegistry& reg) {
    for (const net::Router* router : network.routers()) {
        const net::RouterStats& rs = router->stats();
        reg.add("router.forwarded", rs.forwarded);
        reg.add("router.no_route_drops", rs.no_route_drops);
        reg.add("router.ttl_drops", rs.ttl_drops);
        reg.add("router.cpu_blocked_drops", rs.cpu_blocked_drops);
        reg.add("router.cpu_blocked_delayed", rs.cpu_blocked_delayed);
        reg.add("router.updates_received", rs.updates_received);
        reg.observe("router.cpu_seconds", rs.cpu_seconds);
    }
    for (const auto& agent : agents) {
        const routing::DvStats& ds = agent->stats();
        reg.add("dv.periodic_updates_sent", ds.periodic_updates_sent);
        reg.add("dv.triggered_updates_sent", ds.triggered_updates_sent);
        reg.add("dv.updates_processed", ds.updates_processed);
        reg.add("dv.routes_timed_out", ds.routes_timed_out);
        reg.add("dv.timer_arms", ds.timer_arms);
    }
    // Per-element counters of the packet path, aggregated across links
    // ("elem.link.queue.dropped" = network-wide queue-drop total).
    network.collect_element_metrics(reg);
}

} // namespace routesync::scenarios
