// Folds the stats the packet-level substrate already keeps (RouterStats,
// DvStats) into an obs::MetricsRegistry under stable metric names, so any
// scenario run can publish them in a manifest without per-bench glue.
#pragma once

#include <memory>
#include <vector>

#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "routing/dv_agent.hpp"

namespace routesync::scenarios {

/// Registers aggregate router counters ("router.forwarded", drop classes,
/// "router.cpu_seconds" as a per-router distribution) and DV agent
/// counters ("dv.periodic_updates_sent", ...) into `reg`. Call once,
/// after the run.
void collect_network_metrics(
    const net::Network& network,
    const std::vector<std::unique_ptr<routing::DistanceVectorAgent>>& agents,
    obs::MetricsRegistry& reg);

} // namespace routesync::scenarios
