// The "NEARnet" scenario — the synthetic counterpart of the paper's
// Figure 1/2 measurement (May 1992, pings Berkeley -> MIT dropped every
// ~90 s by synchronized IGRP updates in the NEARnet core routers).
//
// Topology:
//
//   src host -- R1 -- R2 -- dst host        (the measured path)
//                |  X |
//              C1..Ck (core routers, each linked to both R1 and R2)
//
// Every router runs the IGRP-profile distance-vector agent with a full
// backbone table (filler routes) at 1 ms/route processing cost — the
// paper's cisco measurement ("roughly 300 ms to process a routing
// message: 1 ms per route times 300 routes"). With a synchronized start
// and jitter below the Tc/2 breakup threshold, the update storm recurs
// every ~90 s and the blocking route processors stall the forwarding
// plane for (k+2) x ~0.3 s — long enough to delay or drop several
// consecutive 1.01 s pings.
#pragma once

#include <memory>
#include <vector>

#include "apps/apps.hpp"
#include "net/net.hpp"
#include "obs/resource_sampler.hpp"
#include "routing/routing.hpp"
#include "sim/sim.hpp"

namespace routesync::obs {
class RunContext;
}

namespace routesync::scenarios {

struct NearnetConfig {
    int core_routers = 13;     ///< k extra routers in the core
    int filler_routes = 300;   ///< backbone table size
    double per_route_cost_ms = 1.0;
    double update_period_sec = 90.0; ///< IGRP default
    /// Timer jitter. The default (50 ms) is *below* Tc/2 for a ~310 ms
    /// update cost, so synchronization persists — the pre-fix NEARnet.
    double jitter_sec = 0.05;
    bool blocking_cpu = true;  ///< pre-fix (true) vs post-fix (false) routers
    bool synchronized_start = true;
    /// BGP-style incremental updates instead of periodic full tables
    /// (paper footnote 3); the periodic CPU storm disappears.
    bool incremental_updates = false;
    std::uint64_t seed = 1;
};

/// Owns the whole simulated testbed. Build, attach apps to src()/dst(),
/// then run the engine.
class NearnetScenario {
public:
    /// `obs` (optional, not owned, must outlive the scenario): its tracer
    /// is attached to the engine before the network is built, so every
    /// packet/timer/update event of the run lands in the configured sink.
    explicit NearnetScenario(const NearnetConfig& config,
                             obs::RunContext* obs = nullptr);

    /// Publishes the run's router/DV stats into `ctx`'s metrics registry
    /// (see scenarios/scenario_metrics.hpp for the names). Call after the
    /// run, before the manifest is written.
    void collect_metrics(obs::RunContext& ctx) const;

    /// Starts a ResourceSampler over the whole testbed (engine queue,
    /// every router's CPU/pending, every link queue, the packet pool) at
    /// `cadence_sec` of sim time. Call after construction, before the
    /// run; no-op cost when never called.
    void start_sampler(obs::RunContext& ctx, double cadence_sec);

    [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
    [[nodiscard]] net::Network& network() noexcept { return *network_; }
    [[nodiscard]] net::Host& src() noexcept { return *src_; }
    [[nodiscard]] net::Host& dst() noexcept { return *dst_; }
    [[nodiscard]] net::Router& r1() noexcept { return *r1_; }
    [[nodiscard]] net::Router& r2() noexcept { return *r2_; }
    [[nodiscard]] const std::vector<std::unique_ptr<routing::DistanceVectorAgent>>&
    agents() const noexcept {
        return agents_;
    }
    /// When the routing agents' first timers expire (apps should start
    /// after at least one update period has passed).
    [[nodiscard]] sim::SimTime routing_start() const noexcept { return routing_start_; }

private:
    sim::Engine engine_;
    std::unique_ptr<net::Network> network_;
    net::Host* src_ = nullptr;
    net::Host* dst_ = nullptr;
    net::Router* r1_ = nullptr;
    net::Router* r2_ = nullptr;
    std::vector<std::unique_ptr<routing::DistanceVectorAgent>> agents_;
    std::unique_ptr<obs::ResourceSampler> sampler_;
    sim::SimTime routing_start_;
};

} // namespace routesync::scenarios
