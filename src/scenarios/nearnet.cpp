#include "scenarios/nearnet.hpp"

#include "net/net_probes.hpp"
#include "obs/run_context.hpp"
#include "scenarios/scenario_metrics.hpp"

namespace routesync::scenarios {

NearnetScenario::NearnetScenario(const NearnetConfig& config, obs::RunContext* obs)
    : routing_start_{sim::SimTime::seconds(5.0)} {
    if (obs != nullptr) {
        obs->attach(engine_);
    }
    network_ = std::make_unique<net::Network>(engine_);
    auto& nw = *network_;

    src_ = &nw.add_host("src");
    dst_ = &nw.add_host("dst");
    r1_ = &nw.add_router("R1", config.blocking_cpu);
    r2_ = &nw.add_router("R2", config.blocking_cpu);

    // Measured path. T1-era access links, fast core.
    net::LinkConfig access{.rate_bps = 1.5e6,
                           .delay = sim::SimTime::millis(2),
                           .queue_packets = 32};
    net::LinkConfig core{.rate_bps = 10e6,
                         .delay = sim::SimTime::millis(5),
                         .queue_packets = 64};
    nw.connect(*src_, *r1_, access);
    nw.connect(*r1_, *r2_, core);
    nw.connect(*r2_, *dst_, access);

    std::vector<net::Router*> cores;
    cores.reserve(static_cast<std::size_t>(config.core_routers));
    for (int i = 0; i < config.core_routers; ++i) {
        std::string name = "C";
        name += std::to_string(i);
        auto& c = nw.add_router(name, config.blocking_cpu);
        nw.connect(*r1_, c, core);
        nw.connect(*r2_, c, core);
        cores.push_back(&c);
    }

    // The forwarding baseline; the DV agents keep these entries alive and
    // their updates provide the CPU load under study.
    nw.install_static_routes();

    routing::DvConfig dv = routing::igrp_profile().config;
    dv.period = sim::SimTime::seconds(config.update_period_sec);
    dv.jitter = sim::SimTime::seconds(config.jitter_sec);
    dv.filler_routes = config.filler_routes;
    dv.per_route_cost = sim::SimTime::millis(config.per_route_cost_ms);
    // Per the paper's [Li93] note, IGRP implementations of the era reset
    // the routing timer at expiry (before preparing the update), so the
    // synchronized update period stays at exactly 90 s — the measured
    // NEARnet loss period — and, as the paper points out for this timer
    // design, the synchronization never breaks up on its own.
    dv.reset = routing::TimerReset::AtExpiry;
    dv.triggered_updates = false;
    if (config.incremental_updates) {
        dv.incremental = true;
        dv.route_timeout = sim::SimTime::seconds(3 * config.update_period_sec);
    }

    rng::DefaultEngine phase_gen{config.seed};
    int index = 0;
    for (net::Router* router : nw.routers()) {
        routing::DvConfig c = dv;
        c.seed = config.seed + 1000 + static_cast<std::uint64_t>(index);
        std::vector<std::pair<net::NodeId, int>> attached;
        if (router == r1_) {
            attached.emplace_back(src_->id(), 0); // iface 0: first connect()
        } else if (router == r2_) {
            attached.emplace_back(dst_->id(), 1); // iface order: R1 then dst
        }
        auto agent =
            std::make_unique<routing::DistanceVectorAgent>(*router, c, attached);
        const sim::SimTime phase =
            config.synchronized_start
                ? sim::SimTime::zero()
                : sim::SimTime::seconds(
                      rng::uniform_real(phase_gen, 0.0, c.period.sec()));
        agent->start(routing_start_ + phase);
        agents_.push_back(std::move(agent));
        ++index;
    }
}

void NearnetScenario::collect_metrics(obs::RunContext& ctx) const {
    collect_network_metrics(*network_, agents_, ctx.metrics());
}

void NearnetScenario::start_sampler(obs::RunContext& ctx, double cadence_sec) {
    sampler_ = std::make_unique<obs::ResourceSampler>(
        engine_, ctx, sim::SimTime::seconds(cadence_sec));
    sampler_->watch_engine_queue();
    net::watch_network(*sampler_, *network_);
    sampler_->start();
}

} // namespace routesync::scenarios
