// One table of runnable scenarios, keyed by name.
//
// Before this registry every testbed was its own binary with its own
// dispatch (bench/fig*.cpp, examples/*.cpp), so "what can I run?" had no
// single answer. Entries come in two kinds:
//
//   * builtin  — a std::function runner linked into this library. It
//     receives the parsed --flag map (the same shape as cli::Flags; the
//     registry deliberately takes std::map<std::string, std::string>
//     rather than including tools/flags.hpp, so the library keeps zero
//     dependency on the CLI layer) and returns a process exit code.
//   * external — a relative path to a standalone binary (the figures and
//     examples keep their own main()s). run() resolves the path against
//     the --bin-dir flag and executes it, forwarding the remaining
//     flags verbatim.
//
// `routesync scenario list` prints the table; `routesync scenario run
// <name> [--flags]` dispatches through it.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace routesync::scenarios {

/// Parsed "--name value" pairs, exactly the shape cli::parse_flags
/// produces (boolean flags carry the value "1").
using ScenarioFlags = std::map<std::string, std::string>;

struct ScenarioEntry {
    std::string name;
    std::string summary;
    /// One-line flag cheat-sheet shown by `scenario list` (builtins only).
    std::string flags_help;
    /// In-process runner; null for external entries.
    std::function<int(const ScenarioFlags&)> run;
    /// Binary path relative to --bin-dir; empty for builtins.
    std::string binary;

    [[nodiscard]] bool is_builtin() const noexcept { return run != nullptr; }
};

class ScenarioRegistry {
public:
    /// The process-wide table. Starts empty; call
    /// register_builtin_scenarios() (idempotent) to populate it.
    static ScenarioRegistry& instance();

    /// Throws std::invalid_argument on a duplicate or empty name, or an
    /// entry that is neither builtin nor external.
    void add(ScenarioEntry entry);

    [[nodiscard]] const ScenarioEntry* find(const std::string& name) const;

    /// Registration order (builtins first, then figures, then examples).
    [[nodiscard]] const std::vector<ScenarioEntry>& entries() const noexcept {
        return entries_;
    }

    /// Dispatches to the named entry. Builtins run in-process; external
    /// entries exec "<bin-dir>/<binary>" (bin-dir from `flags`, default
    /// ".") with the remaining flags forwarded. Throws
    /// std::invalid_argument for an unknown name.
    int run(const std::string& name, const ScenarioFlags& flags) const;

private:
    std::vector<ScenarioEntry> entries_;
};

/// Fills the registry with the built-in table: the in-process scenarios
/// (nearnet, audiocast, shared_lan) plus external entries for every
/// figure and example binary. Safe to call more than once.
void register_builtin_scenarios();

/// The `scenario sweep shared_lan` runner: a (buffer x load x trial)
/// grid of packet-level shared-LAN simulations over one work-stealing
/// pool (see scenario_sweep.hpp). Flags: the shared_lan set plus
/// --buffers LO..HI|a,b,c  --loads a,b,c  --trials K  --jobs N
/// [--out MANIFEST]. Stdout is byte-identical for every --jobs value.
int run_shared_lan_sweep(const ScenarioFlags& flags);

} // namespace routesync::scenarios
