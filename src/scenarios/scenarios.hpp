// Umbrella header for the reusable measurement testbeds.
#pragma once

#include "scenarios/audiocast.hpp" // IWYU pragma: export
#include "scenarios/nearnet.hpp"   // IWYU pragma: export
