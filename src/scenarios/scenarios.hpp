// Umbrella header for the reusable measurement testbeds.
#pragma once

#include "scenarios/audiocast.hpp"          // IWYU pragma: export
#include "scenarios/nearnet.hpp"            // IWYU pragma: export
#include "scenarios/registry.hpp"           // IWYU pragma: export
#include "scenarios/shared_lan_scenario.hpp" // IWYU pragma: export
