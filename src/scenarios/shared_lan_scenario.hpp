// The shared-LAN scenario — the paper's periodic-update workload on a
// CSMA/CD Ethernet whose station queues are under sustained congestion,
// with the queue discipline as the experiment knob.
//
// This is the first composition payoff of the element graph: the same
// topology runs drop-tail or RED per station by flipping
// SharedLanConfig::queue_disc — no code fork. The mechanism under test
// is the one [FJ92] points at ("random early drop fixes it"): routing
// updates share their station's queue with bursty background traffic,
// so under drop-tail a near-full standing queue silently eats updates
// (weakening the coupling *and* the routers' mutual visibility), while
// RED sheds background load early, keeps the average queue short, and
// lets the updates through.
//
// Topology: n stations each run a PeriodicAgent (Tp/Tr/Tc, the paper's
// reset-after-processing rule). A background process injects a fixed
// burst of Data frames into the stations' own queues round-robin, at an
// offered load close to the medium's capacity.
#pragma once

#include <cstdint>
#include <optional>

#include "net/elements/element.hpp"
#include "net/elements/queue_element.hpp"
#include "net/elements/red_queue.hpp"
#include "obs/sync_monitor.hpp"
#include "sim/time.hpp"

namespace routesync::obs {
class Tracer;
}

namespace routesync::scenarios {

struct SharedLanScenarioConfig {
    int n = 10;                                     ///< stations/agents
    sim::SimTime tp = sim::SimTime::seconds(30);    ///< update period
    sim::SimTime tr = sim::SimTime::seconds(0.05);  ///< timer jitter
    sim::SimTime tc = sim::SimTime::seconds(0.2);   ///< processing cost
    std::uint32_t update_bytes = 1000;

    net::elements::QueueDisc queue_disc = net::elements::QueueDisc::DropTail;
    std::size_t queue_packets = 8; ///< per-station capacity (small: congested)
    /// RED tuning sized for the 8-packet queue; weight 0.1 (not the WAN
    /// default 0.002) so the average tracks sub-second LAN bursts.
    net::elements::RedTuning red{/*min_th=*/2, /*max_th=*/6, /*max_p=*/0.1,
                                 /*weight=*/0.1, /*seed=*/7};

    double lan_rate_bps = 1e6; ///< slow medium: congestion at small frame counts
    /// Background load: `bg_burst` Data frames of `bg_bytes` injected
    /// every `bg_period` into station (burst_index mod n). Defaults give
    /// ~82 % offered utilization — a persistent, oscillating backlog.
    int bg_burst = 10;
    sim::SimTime bg_period = sim::SimTime::millis(50);
    std::uint32_t bg_bytes = 512;

    sim::SimTime max_time = sim::SimTime::seconds(5000);
    std::uint64_t seed = 1; ///< initial phase draws (and LAN backoff via +1)

    /// Synchronization observatory (the engine path's --monitor, here for
    /// the element-graph workload): when set, a SyncMonitor rides the
    /// same agent re-arm stream the ClusterTracker sees and the result
    /// carries a SyncReport + coupling graph. Off by default — the
    /// unmonitored run is untouched.
    bool monitor = false;
    double sync_threshold = 0.95;
    double sync_hysteresis = 0.02;

    /// Element-graph dispatch for the scenario's own graph and the LAN's
    /// station queues. Virtual is the differential reference.
    net::elements::DispatchMode dispatch = net::elements::DispatchMode::Fast;

    /// When set, the scenario's engine emits trace events through this
    /// tracer (attached before any component is built, so queue and
    /// medium events are captured from t = 0). The caller owns it; null —
    /// the default — leaves the run untraced and untouched.
    obs::Tracer* tracer = nullptr;
};

struct SharedLanScenarioResult {
    // Medium counters (SharedLanStats, flattened).
    std::uint64_t frames_offered = 0;
    std::uint64_t frames_delivered = 0;
    std::uint64_t collisions = 0;
    std::uint64_t drops_queue_full = 0; ///< all queue drops, early + forced
    // RED decomposition of the queue drops (0 under drop-tail).
    std::uint64_t red_early_drops = 0;
    std::uint64_t red_forced_drops = 0;
    // Agent coupling counters.
    std::uint64_t updates_sent = 0;  ///< timer firings (offered updates)
    std::uint64_t updates_heard = 0; ///< updates that survived queue + medium
    // Synchronization measures.
    int largest_cluster = 0;
    std::optional<double> largest_cluster_time_s; ///< first reach of largest
    std::optional<double> full_sync_time_s;
    double end_time_s = 0.0;
    // Synchronization observatory (present when config.monitor was set).
    std::optional<obs::SyncReport> sync;
    obs::CouplingGraph sync_coupling;
    /// The element graph's wiring (ElementGraph::wire_spec()), recorded
    /// unconditionally so a manifest can embed the topology that ran.
    std::string wire_spec;
};

/// Runs the scenario to full synchronization or `max_time`, whichever
/// comes first. Deterministic for a fixed config.
SharedLanScenarioResult run_shared_lan_scenario(const SharedLanScenarioConfig& config);

} // namespace routesync::scenarios
