#include "scenarios/audiocast.hpp"

#include "obs/run_context.hpp"
#include "scenarios/scenario_metrics.hpp"

namespace routesync::scenarios {

AudiocastScenario::AudiocastScenario(const AudiocastConfig& config,
                                     obs::RunContext* obs)
    : routing_start_{sim::SimTime::seconds(5.0)} {
    if (obs != nullptr) {
        obs->attach(engine_);
    }
    network_ = std::make_unique<net::Network>(engine_);
    auto& nw = *network_;

    audio_src_ = &nw.add_host("audio-src");
    audio_dst_ = &nw.add_host("audio-dst");
    bg_src_ = &nw.add_host("bg-src");
    bg_dst_ = &nw.add_host("bg-dst");
    auto& r1 = nw.add_router("R1", config.blocking_cpu);
    auto& r2 = nw.add_router("R2", config.blocking_cpu);

    net::LinkConfig lan{.rate_bps = 10e6,
                        .delay = sim::SimTime::millis(1),
                        .queue_packets = 64};
    net::LinkConfig bottleneck{.rate_bps = config.bottleneck_bps,
                               .delay = sim::SimTime::millis(10),
                               .queue_packets = config.bottleneck_queue};
    nw.connect(*audio_src_, r1, lan); // r1 iface 0
    nw.connect(*bg_src_, r1, lan);    // r1 iface 1
    nw.connect(r1, r2, bottleneck);   // r1 iface 2, r2 iface 0
    nw.connect(r2, *audio_dst_, lan); // r2 iface 1
    nw.connect(r2, *bg_dst_, lan);    // r2 iface 2

    // A full mesh among the routers stands in for the broadcast LAN of the
    // Periodic Messages model: every router hears (and pays CPU for) every
    // other router's update. Equal degree keeps busy periods equal, so the
    // synchronized cluster holds together exactly as in the model.
    std::vector<net::Router*> cores;
    for (int i = 0; i < config.core_routers; ++i) {
        std::string name = "C";
        name += std::to_string(i);
        auto& c = nw.add_router(name, config.blocking_cpu);
        nw.connect(r1, c, lan);
        nw.connect(r2, c, lan);
        for (net::Router* other : cores) {
            nw.connect(*other, c, lan);
        }
        cores.push_back(&c);
    }

    nw.install_static_routes();

    routing::DvConfig dv = routing::rip_profile().config;
    dv.jitter = sim::SimTime::seconds(config.jitter_sec);
    dv.filler_routes = config.filler_routes;
    dv.per_route_cost = sim::SimTime::millis(config.per_route_cost_ms);
    // The figure's system is already fully synchronized; initial triggered
    // convergence waves would re-seed the timers into several sub-clusters
    // (which, with jitter below the breakup threshold, then persist), so
    // convergence here relies on the periodic updates alone.
    dv.triggered_updates = false;

    int index = 0;
    for (net::Router* router : nw.routers()) {
        routing::DvConfig c = dv;
        c.seed = config.seed + 2000 + static_cast<std::uint64_t>(index);
        std::vector<std::pair<net::NodeId, int>> attached;
        if (router == &r1) {
            attached.emplace_back(audio_src_->id(), 0);
            attached.emplace_back(bg_src_->id(), 1);
        } else if (router == &r2) {
            attached.emplace_back(audio_dst_->id(), 1);
            attached.emplace_back(bg_dst_->id(), 2);
        }
        auto agent =
            std::make_unique<routing::DistanceVectorAgent>(*router, c, attached);
        agent->start(routing_start_); // synchronized start (triggered-update wave)
        agents_.push_back(std::move(agent));
        ++index;
    }
}

void AudiocastScenario::collect_metrics(obs::RunContext& ctx) const {
    collect_network_metrics(*network_, agents_, ctx.metrics());
}

} // namespace routesync::scenarios
