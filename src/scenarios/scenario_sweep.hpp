// Packet-level scenario sweeps: one work-stealing pool for a whole
// (buffer x load x trial) grid of shared-LAN experiments.
//
// The PM sweeps (parallel::SweepScheduler) parallelize the paper's
// analytic model; this runner gives the element-graph workload the same
// treatment. Every cell of the grid is one full packet-level simulation
// (run_shared_lan_scenario), so a RED-vs-drop-tail buffer scan that took
// a serial afternoon fans out over every core — and near the sync phase
// transition, where one cell runs to max_time while its neighbours
// finish in seconds, parallel::TaskPool's stealing shares the long tail
// across the machine.
//
// Determinism contract (the same one every parallel path in this repo
// honors):
//   * a cell's config is a pure function of its submission index
//     (buffer-major, then load, then trial);
//   * each cell runs its own Engine AND its own Tracer/HashingSink, and
//     the result lands in a slot addressed by the submission index;
//   * therefore --jobs N output is byte-identical to --jobs 1, and each
//     cell's 64-bit trace digest is the per-cell witness: any
//     cross-thread contamination would show up as a digest mismatch.
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

#include "scenarios/shared_lan_scenario.hpp"

namespace routesync::scenarios {

struct ScenarioSweepConfig {
    /// Template for every cell; the grid overrides queue_packets (from
    /// `buffers`), bg_burst (scaled by `loads`), and seed (from `trials`).
    SharedLanScenarioConfig base;
    /// Station-queue capacities to scan (the paper's buffer knob).
    std::vector<std::size_t> buffers;
    /// Background-load multipliers: cell bg_burst =
    /// round(base.bg_burst * load), minimum 0.
    std::vector<double> loads;
    /// Trials per grid point; trial t runs with seed base.seed + t.
    int trials = 1;
    /// Worker threads. 0 = hardware concurrency; 1 = inline reference.
    std::size_t jobs = 1;
    /// Trace every cell through a HashingSink and record the digest
    /// (cheap: no I/O, 8 bytes of state). Off = untraced cells,
    /// digest 0.
    bool hash_traces = true;
};

/// One grid cell, in submission order.
struct ScenarioSweepCell {
    std::size_t buffer = 0;       ///< queue_packets this cell ran with
    double load = 1.0;            ///< bg multiplier this cell ran with
    int trial = 0;
    std::uint64_t seed = 0;       ///< the seed the scenario actually used
    SharedLanScenarioResult result;
    std::uint64_t trace_digest = 0; ///< HashingSink digest (0 if untraced)
    std::uint64_t trace_events = 0; ///< events folded into the digest
};

struct ScenarioSweepResult {
    std::vector<ScenarioSweepCell> cells; ///< buffer-major, load, trial
    std::size_t jobs = 1;    ///< effective worker count
    std::size_t steals = 0;  ///< TaskPool steals (0 under jobs = 1)
    /// FNV-1a fold of every cell's digest in submission order — one
    /// number that witnesses the whole sweep's event streams.
    std::uint64_t combined_digest = 0;
};

/// Runs the full grid. Throws std::invalid_argument on an empty grid
/// axis or trials < 1.
ScenarioSweepResult run_scenario_sweep(const ScenarioSweepConfig& config);

/// Parses a --buffers spec: either "LO..HI" (a doubling ladder: LO,
/// 2*LO, ... capped at HI, HI always included) or a comma list "8,16,24".
/// Throws std::invalid_argument on junk, zeros, or LO > HI.
std::vector<std::size_t> parse_buffer_list(const std::string& spec);

/// Parses a --loads comma list "0.5,1.0,1.5" of non-negative
/// multipliers. Throws std::invalid_argument on junk or negatives.
std::vector<double> parse_load_list(const std::string& spec);

} // namespace routesync::scenarios
