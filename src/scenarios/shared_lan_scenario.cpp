#include "scenarios/shared_lan_scenario.hpp"

#include <memory>
#include <string>
#include <vector>

#include <optional>

#include "core/cluster_tracker.hpp"
#include "net/elements/callback_sink.hpp"
#include "net/elements/element_graph.hpp"
#include "net/elements/periodic_agent.hpp"
#include "net/elements/red_queue.hpp"
#include "net/shared_lan.hpp"
#include "rng/rng.hpp"
#include "sim/engine.hpp"

namespace routesync::scenarios {

namespace {

/// Self-rescheduling background-burst source. Bursts rotate over the
/// stations so every router's queue periodically competes with cross
/// traffic — the congestion the queue discipline has to manage.
class BackgroundBursts {
public:
    BackgroundBursts(sim::Engine& engine, net::SharedLan& lan,
                     const SharedLanScenarioConfig& config)
        : engine_{engine}, lan_{lan}, config_{config} {}

    void start(sim::SimTime at) {
        engine_.schedule_at(at, [this] { fire(); });
    }

private:
    void fire() {
        const int station = static_cast<int>(burst_index_ % config_.n);
        for (int i = 0; i < config_.bg_burst; ++i) {
            net::Packet p;
            p.type = net::PacketType::Data;
            p.src = station;
            p.dst = -1;
            p.size_bytes = config_.bg_bytes;
            p.seq = seq_++;
            p.sent_at = engine_.now();
            lan_.send(station, std::move(p));
        }
        ++burst_index_;
        engine_.schedule_after(config_.bg_period, [this] { fire(); });
    }

    sim::Engine& engine_;
    net::SharedLan& lan_;
    const SharedLanScenarioConfig& config_;
    long burst_index_ = 0;
    std::uint64_t seq_ = 0;
};

} // namespace

SharedLanScenarioResult run_shared_lan_scenario(
    const SharedLanScenarioConfig& config) {
    sim::Engine engine;
    if (config.tracer != nullptr) {
        engine.set_tracer(config.tracer);
    }

    net::SharedLanConfig lan_cfg;
    lan_cfg.rate_bps = config.lan_rate_bps;
    lan_cfg.station_queue_packets = config.queue_packets;
    lan_cfg.queue_disc = config.queue_disc;
    lan_cfg.red = config.red;
    lan_cfg.seed = config.seed + 1; // backoff lottery, decoupled from phases
    lan_cfg.dispatch = config.dispatch;
    net::SharedLan lan{engine, lan_cfg};

    net::elements::ElementGraph graph{engine};
    core::ClusterTracker tracker{config.n, config.tp + config.tc,
                                 sim::SimTime::millis(50)};

    // The observatory rides the same re-arm stream the tracker sees
    // (agent start() never fires on_timer_set, so — exactly like the
    // engine path — the monitor observes re-arms only).
    std::optional<obs::SyncMonitor> monitor;
    if (config.monitor) {
        obs::SyncMonitorConfig mc;
        mc.n = config.n;
        mc.period_sec = (config.tp + config.tc).sec();
        mc.threshold = config.sync_threshold;
        mc.hysteresis = config.sync_hysteresis;
        monitor.emplace(mc);
    }
    obs::SyncMonitor* mon = monitor.has_value() ? &*monitor : nullptr;

    std::vector<net::elements::PeriodicAgent*> agents;
    agents.reserve(static_cast<std::size_t>(config.n));
    rng::DefaultEngine phases{config.seed};
    for (int i = 0; i < config.n; ++i) {
        net::elements::PeriodicAgentConfig ac;
        ac.node = i;
        ac.period = config.tp;
        ac.jitter = config.tr;
        ac.process_cost = config.tc;
        ac.update_bytes = config.update_bytes;
        ac.seed = 400 + static_cast<std::uint64_t>(i);
        auto& agent = graph.add<net::elements::PeriodicAgent>(
            "agent" + std::to_string(i), ac);
        // Only routing updates reach the agent's ear: the background Data
        // frames share the queues and the medium, not the processing cost.
        const int station = lan.attach([&agent](const net::Packet& p) {
            if (p.type == net::PacketType::RoutingUpdate) {
                agent.hear(p);
            }
        });
        // The sink sees every update the agent offers (pre-queue, sender
        // side) — the transmit stream the monitor samples.
        graph.add<net::elements::CallbackSink>(
            "tolan" + std::to_string(i),
            [&lan, &engine, station, i, mon](net::PooledPacket p) {
                if (mon != nullptr) {
                    mon->on_transmit(i, engine.now());
                }
                lan.send(station, std::move(p));
            });
        graph.connect("agent" + std::to_string(i), 0,
                      "tolan" + std::to_string(i), 0);
        agent.on_timer_set = [&tracker, mon](int node, sim::SimTime t) {
            tracker.on_timer_set(node, t);
            if (mon != nullptr) {
                mon->on_timer_set(node, t);
            }
        };
        agent.start(sim::SimTime::seconds(
            rng::uniform_real(phases, 0.0, config.tp.sec())));
        agents.push_back(&agent);
    }
    graph.finalize(config.dispatch);

    SharedLanScenarioResult result;
    result.wire_spec = graph.wire_spec();

    tracker.on_size_first_reached = [&result](int size, sim::SimTime t) {
        if (size > result.largest_cluster) {
            result.largest_cluster = size;
            result.largest_cluster_time_s = t.sec();
        }
    };
    tracker.on_full_sync = [&engine](sim::SimTime) { engine.stop(); };

    BackgroundBursts bg{engine, lan, config};
    bg.start(sim::SimTime::zero());

    engine.run_until(config.max_time);
    tracker.finish();
    if (mon != nullptr) {
        mon->finish(engine.now());
        result.sync = mon->report();
        result.sync_coupling = mon->coupling();
    }
    result.full_sync_time_s = tracker.full_sync_time().has_value()
                                  ? std::optional<double>{tracker.full_sync_time()->sec()}
                                  : std::nullopt;
    result.end_time_s = engine.now().sec();

    const net::SharedLanStats& ls = lan.stats();
    result.frames_offered = ls.frames_offered;
    result.frames_delivered = ls.frames_delivered;
    result.collisions = ls.collisions;
    result.drops_queue_full = ls.drops_queue_full;
    for (const auto& elem : lan.graph().elements()) {
        if (const auto* red =
                dynamic_cast<const net::elements::RedQueue*>(elem.get())) {
            result.red_early_drops += red->early_drops();
            result.red_forced_drops += red->forced_drops();
        }
    }
    for (const net::elements::PeriodicAgent* agent : agents) {
        result.updates_sent += agent->updates_sent();
        result.updates_heard += agent->updates_heard();
    }
    return result;
}

} // namespace routesync::scenarios
