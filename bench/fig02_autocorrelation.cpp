// Figure 2 — "The autocorrelation of roundtrip times": the RTT series of
// Figure 1 with dropped pings assigned a 2-second RTT, autocorrelated;
// the paper's signature is the peak at lag 89 (~90 s / 1.01 s per ping).
#include <cstdio>

#include "bench/common.hpp"
#include "scenarios/scenarios.hpp"
#include "stats/stats.hpp"

using namespace routesync;
using namespace routesync::bench;

int main(int argc, char** argv) {
    Options& options = parse_options(argc, argv, "Figure 2: RTT autocorrelation");
    options.sim_seconds = 1500.0;
    header("Figure 2", "autocorrelation of the Figure 1 RTT series (losses -> 2 s)");

    scenarios::NearnetScenario s{scenarios::NearnetConfig{}, &options.ctx};
    apps::PingConfig pc;
    pc.dst = s.dst().id();
    pc.count = 1000;
    apps::PingApp ping{s.src(), pc};
    ping.start(s.routing_start() + sim::SimTime::seconds(200));
    s.engine().run_until(sim::SimTime::seconds(1500));
    s.collect_metrics(options.ctx);

    const auto series = ping.rtts_with_losses_as(2.0);
    const auto r = stats::autocorrelation(series, 200);

    section("series: lag (pings) vs autocorrelation");
    std::printf("%5s %10s\n", "lag", "r");
    for (std::size_t k = 1; k <= 200; k += (k < 100 ? 1 : 5)) {
        std::printf("%5zu %10.4f\n", k, r[k]);
    }

    const auto dom = stats::dominant_lag(series, 30, 150);
    const auto freq = stats::dominant_frequency(series, 1.0 / 150.0, 0.5);
    section("summary");
    std::printf("dominant lag      : %zu pings (paper: 89)\n", dom.lag);
    std::printf("corr at that lag  : %.3f\n", dom.correlation);
    std::printf("corr at 2x lag    : %.3f\n", r[2 * dom.lag]);
    std::printf("spectral peak     : period %.1f pings (frequency %.5f "
                "cycles/ping)\n",
                freq.period, freq.frequency);

    check(dom.lag >= 87 && dom.lag <= 91,
          "dominant autocorrelation lag ~89 pings (~90 s period)");
    check(dom.correlation > 0.4, "the periodic component dominates the series");
    check(r[2 * dom.lag] > 0.25, "harmonic at twice the lag (periodic, not one-off)");
    check(freq.period > 85 && freq.period < 93,
          "the periodogram corroborates the ~89-ping period in the "
          "frequency domain");

    return footer();
}
