// Extension bench — the paper's Section 1 TCP example, quantified:
//
//   "A well-known example of unintended synchronization is the
//    synchronization of the window increase/decrease cycles of separate
//    TCP connections sharing a common bottleneck gateway [ZhCl90] ...
//    the synchronization ... can be avoided by adding randomization to
//    the gateway's algorithm for choosing packets to drop [FJ92]."
//
// Six AIMD flows share one bottleneck. Under drop-tail, overflow episodes
// hit every flow at once: the windows halve in lockstep and the aggregate
// sawtooths. A randomized early-drop gateway spreads the congestion
// signals, so backoff episodes touch fewer flows.
#include <cstdio>

#include "bench/common.hpp"
#include "tcpsync/tcpsync.hpp"

using namespace routesync;
using namespace routesync::bench;

namespace {

tcpsync::TcpExperimentResult run(tcpsync::DropPolicy policy) {
    tcpsync::TcpExperimentConfig c;
    c.flows = 6;
    c.base_rtt_sec = 0.1;
    c.duration_sec = 300.0;
    c.bottleneck.policy = policy;
    c.bottleneck.rate_pps = 1000.0;
    c.bottleneck.buffer_packets = 150;
    c.bottleneck.red_min_frac = 0.1;
    c.bottleneck.red_max_frac = 0.6;
    c.bottleneck.red_p_max = 0.03;
    c.bottleneck.red_weight = 0.002;
    return tcpsync::run_tcp_experiment(c);
}

const char* name(tcpsync::DropPolicy policy) {
    switch (policy) {
    case tcpsync::DropPolicy::DropTail: return "drop-tail";
    case tcpsync::DropPolicy::RandomDrop: return "random-drop";
    case tcpsync::DropPolicy::RedLike: return "random early drop";
    }
    return "?";
}

} // namespace

int main(int argc, char** argv) {
    parse_options(argc, argv);
    header("Extension (paper Section 1)",
           "TCP window increase/decrease synchronization at a shared "
           "bottleneck, vs gateway drop policy");

    section("6 AIMD flows, 1000 pkt/s bottleneck, 150-packet buffer, 300 s");
    std::printf("%-20s %10s %16s %10s %10s %10s\n", "gateway", "sync_idx",
                "flows/episode", "largest", "util", "agg_cov");
    tcpsync::TcpExperimentResult droptail;
    tcpsync::TcpExperimentResult red;
    for (const auto policy :
         {tcpsync::DropPolicy::DropTail, tcpsync::DropPolicy::RandomDrop,
          tcpsync::DropPolicy::RedLike}) {
        const auto r = run(policy);
        std::printf("%-20s %10.3f %16.2f %10d %10.3f %10.3f\n", name(policy),
                    r.sync_index, r.mean_flows_per_episode,
                    r.largest_halving_cluster, r.link_utilization,
                    r.aggregate_window_cov);
        if (policy == tcpsync::DropPolicy::DropTail) {
            droptail = r;
        }
        if (policy == tcpsync::DropPolicy::RedLike) {
            red = r;
        }
    }

    section("summary");
    std::printf("drop-tail backoff episodes touch %.1f of 6 flows; randomized "
                "early drop %.1f\n",
                droptail.mean_flows_per_episode, red.mean_flows_per_episode);

    check(droptail.mean_flows_per_episode > 4.0,
          "drop-tail synchronizes: most flows halve together in each episode");
    check(red.mean_flows_per_episode < droptail.mean_flows_per_episode - 1.0,
          "randomized dropping de-synchronizes the backoffs (the [FJ92] fix)");
    check(red.sync_index < droptail.sync_index,
          "the clustered-halving fraction falls under randomization");
    check(droptail.largest_halving_cluster == 6,
          "under drop-tail, global all-flow backoffs occur");
    check(droptail.link_utilization > 0.9 && red.link_utilization > 0.6,
          "both gateways keep the link busy (shape, not tuning, is the point)");

    return footer();
}
