// Figure 9 — "The Markov chain": the birth-death chain over largest
// cluster size, with the paper's transition probabilities (Eqs. 1-2)
// tabulated for the canonical parameters. The diagram becomes a table:
// one row per state with p(i,i-1), p(i,i), p(i,i+1), the per-round phase
// drift, and the conditional step times t(i,i±1).
#include <cstdio>

#include "bench/common.hpp"
#include "markov/markov.hpp"

using namespace routesync;
using namespace routesync::bench;

int main(int argc, char** argv) {
    parse_options(argc, argv);
    header("Figure 9",
           "the Markov chain: states and transition probabilities "
           "(N=20, Tp=121 s, Tc=0.11 s, Tr=0.11 s, f(2)=19)");

    markov::ChainParams p;
    p.n = 20;
    p.tp_sec = 121.0;
    p.tr_sec = 0.11;
    p.tc_sec = 0.11;
    p.f2_rounds = 19.0;
    const markov::FJChain chain{p};

    section("transition structure");
    std::printf("%5s %12s %12s %12s %12s %10s %10s\n", "state", "p(i,i-1)",
                "p(i,i)", "p(i,i+1)", "drift_s", "t_down", "t_up");
    for (int i = 1; i <= p.n; ++i) {
        const double down = chain.p_down(i);
        const double up = chain.p_up(i);
        std::printf("%5d %12.6f %12.6f %12.6f %12.6f %10.3f %10.3f\n", i, down,
                    1.0 - down - up, up, chain.drift_seconds(i), chain.t_down(i),
                    chain.t_up(i));
    }

    section("stationary distribution (extension: detailed balance)");
    const auto pi = chain.stationary_distribution();
    for (int i = 1; i <= p.n; ++i) {
        std::printf("pi(%2d) = %.3e\n", i, pi[static_cast<std::size_t>(i)]);
    }
    std::printf("mean stationary cluster size: %.2f of %d\n",
                chain.mean_stationary_cluster_size(), p.n);

    bool rows_are_distributions = true;
    bool down_monotone = true;
    for (int i = 2; i <= p.n; ++i) {
        const double down = chain.p_down(i);
        const double up = chain.p_up(i);
        if (down < 0 || up < 0 || down + up > 1.0) {
            rows_are_distributions = false;
        }
        if (i > 2 && chain.p_down(i) >= chain.p_down(i - 1)) {
            down_monotone = false;
        }
    }
    check(rows_are_distributions, "every row is a probability distribution");
    check(down_monotone,
          "break-up probability falls with cluster size (bigger clusters stick)");
    check(chain.p_up(p.n) == 0.0, "state N is the top of the ladder");
    check(chain.drift_seconds(2) > 0,
          "at these parameters a pair drifts forward and can grow");

    return footer();
}
