// Figure 13 — the Figure 12 curves swept over N in {10, 20, 30} and
// Tc in {0.01, 0.11} seconds, with Tr expressed in units of Tc. The
// paper's takeaway: "choosing Tr at least ten times greater than Tc
// ensures that clusters of routing messages will be quickly broken up",
// across the whole parameter range.
#include <cstdio>
#include <sstream>
#include <vector>

#include "bench/common.hpp"
#include "core/core.hpp"
#include "markov/markov.hpp"
#include "parallel/parallel.hpp"

using namespace routesync;
using namespace routesync::bench;

namespace {

markov::FJChain make_chain(int n, double tc, double tr) {
    markov::ChainParams p;
    p.n = n;
    p.tp_sec = 121.0;
    p.tc_sec = tc;
    p.tr_sec = tr;
    p.f2_rounds = markov::f2_diffusion_estimate(n, p.tp_sec, tr);
    return markov::FJChain{p};
}

/// Simulation window for the measured time-to-sync column. fig04's
/// reference point (N=20, Tc=0.11, Tr=0.1) syncs at ~5.8e4 s, so 1.5e5 s
/// covers the synchronizing regime with headroom; runs stop early the
/// instant the full cluster forms.
constexpr double kSyncWindowSec = 1.5e5;

/// One monitored simulation trial: time to r >= 0.95 (SyncMonitor's
/// default threshold), or -1 if not reached within the window.
double measured_time_to_sync(int n, double tc, double tr, std::uint64_t seed,
                             bool* full_implies_crossing) {
    core::ExperimentConfig cfg;
    cfg.params.n = n;
    cfg.params.tp = sim::SimTime::seconds(121.0);
    cfg.params.tc = sim::SimTime::seconds(tc);
    cfg.params.tr = sim::SimTime::seconds(tr);
    cfg.params.seed = seed;
    cfg.max_time = sim::SimTime::seconds(kSyncWindowSec);
    cfg.stop_on_full_sync = true;
    cfg.monitor = true;
    const auto r = core::run_experiment(cfg);
    if (full_implies_crossing != nullptr && r.full_sync_time_sec.has_value() &&
        !(r.sync.has_value() && r.sync->time_to_sync_sec >= 0.0)) {
        // The full cluster re-arms in lockstep, so r hits ~1 the moment
        // it forms: a full-sync run that never crossed threshold is a bug.
        *full_implies_crossing = false;
    }
    return r.sync.has_value() ? r.sync->time_to_sync_sec : -1.0;
}

std::string fmt_sync(double t) {
    return t >= 0.0 ? fmt_time(t) : ">window";
}

} // namespace

int main(int argc, char** argv) {
    OptionsSpec spec;
    spec.description = "Figure 13: f(N) and g(1) vs Tr/Tc over the N x Tc grid";
    spec.extra = {"bench-out"}; // BENCH_sweep.json path override
    Options& options = parse_options(argc, argv, spec);
    const std::size_t jobs = options.jobs;
    header("Figure 13",
           "f(N) and g(1) vs Tr (in units of Tc) for N in {10,20,30}, "
           "Tc in {0.01, 0.11} s, Tp = 121 s");

    bool ten_tc_breaks_everything = true;
    bool breakup_harder_with_n = true;
    bool full_implies_crossing = true;
    bool any_sim_synced = false;
    bool any_sim_never = false;
    std::ostringstream json_rows;
    bool first_json_row = true;

    for (const double tc : {0.01, 0.11}) {
        for (const int n : {10, 20, 30}) {
            section("Tc = " + std::to_string(tc) + " s, N = " + std::to_string(n));
            std::printf("%7s %16s %16s %16s\n", "Tr/Tc", "g1_s", "fN_s",
                        "sync_sim_s");
            // Same accumulation as the old serial loop (bit-identical
            // factors); chain evaluations fan out, printing stays serial.
            std::vector<double> grid;
            for (double factor = 0.6; factor <= 8.01; factor += 0.4) {
                grid.push_back(factor);
            }
            struct Row {
                double g1, fn, sync_sim;
                bool full_crossed;
            };
            const std::uint64_t seed_base = options.seed_or(42);
            const auto rows =
                parallel::map_index<Row>(grid.size(), jobs, [&](std::size_t i) {
                    const auto chain = make_chain(n, tc, grid[i] * tc);
                    Row row{chain.time_to_break_up_seconds(),
                            chain.time_to_synchronize_seconds(), -1.0, true};
                    row.sync_sim = measured_time_to_sync(
                        n, tc, grid[i] * tc, seed_base + i, &row.full_crossed);
                    return row;
                });
            for (std::size_t i = 0; i < grid.size(); ++i) {
                std::printf("%7.1f %16s %16s %16s\n", grid[i],
                            fmt_time(rows[i].g1).c_str(),
                            fmt_time(rows[i].fn).c_str(),
                            fmt_sync(rows[i].sync_sim).c_str());
                full_implies_crossing =
                    full_implies_crossing && rows[i].full_crossed;
                (rows[i].sync_sim >= 0.0 ? any_sim_synced : any_sim_never) = true;
                json_rows << (first_json_row ? "" : ",\n")
                          << "      {\"n\": " << n << ", \"tc_sec\": " << tc
                          << ", \"tr_over_tc\": " << grid[i]
                          << ", \"time_to_sync_sec\": " << rows[i].sync_sim
                          << "}";
                first_json_row = false;
            }
            const double g_at_10tc =
                make_chain(n, tc, 10.0 * tc).time_to_break_up_seconds();
            std::printf("g(1) at Tr = 10*Tc: %s\n", fmt_time(g_at_10tc).c_str());
            if (!(g_at_10tc < 2e5)) {
                ten_tc_breaks_everything = false;
            }
        }
        // Larger N holds clusters together longer at the same Tr/Tc.
        const double g10 = make_chain(10, tc, 3.0 * tc).time_to_break_up_seconds();
        const double g30 = make_chain(30, tc, 3.0 * tc).time_to_break_up_seconds();
        if (!(g30 > g10)) {
            breakup_harder_with_n = false;
        }
    }

    check(ten_tc_breaks_everything,
          "Tr >= 10*Tc breaks clusters up quickly for every (N, Tc) in the sweep "
          "(the paper's rule of thumb)");
    check(breakup_harder_with_n,
          "at fixed Tr/Tc, larger networks hold synchronization longer");
    check(full_implies_crossing,
          "every simulated run that reached full sync also crossed r >= 0.95 "
          "(monitor agrees with the cluster tracker)");
    check(any_sim_synced && any_sim_never,
          "simulated time-to-sync spans both regimes: reached at small Tr/Tc, "
          "not reached at large");

    {
        std::ostringstream out;
        out << "{\n    \"window_sec\": " << kSyncWindowSec
            << ",\n    \"threshold\": 0.95,\n    \"rows\": [\n"
            << json_rows.str() << "\n    ]\n  }";
        const std::string path =
            cli::flag_s(options.extra, "bench-out", "BENCH_sweep.json");
        write_json_section(path, "fig13_time_to_sync", out.str());
        if (FILE* f = chatter()) {
            std::fprintf(f, "\nwrote section \"fig13_time_to_sync\" of %s\n",
                         path.c_str());
        }
    }

    return footer();
}
