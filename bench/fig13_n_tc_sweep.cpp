// Figure 13 — the Figure 12 curves swept over N in {10, 20, 30} and
// Tc in {0.01, 0.11} seconds, with Tr expressed in units of Tc. The
// paper's takeaway: "choosing Tr at least ten times greater than Tc
// ensures that clusters of routing messages will be quickly broken up",
// across the whole parameter range.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "markov/markov.hpp"
#include "parallel/parallel.hpp"

using namespace routesync;
using namespace routesync::bench;

namespace {

markov::FJChain make_chain(int n, double tc, double tr) {
    markov::ChainParams p;
    p.n = n;
    p.tp_sec = 121.0;
    p.tc_sec = tc;
    p.tr_sec = tr;
    p.f2_rounds = markov::f2_diffusion_estimate(n, p.tp_sec, tr);
    return markov::FJChain{p};
}

} // namespace

int main(int argc, char** argv) {
    const std::size_t jobs = parse_options(argc, argv).jobs;
    header("Figure 13",
           "f(N) and g(1) vs Tr (in units of Tc) for N in {10,20,30}, "
           "Tc in {0.01, 0.11} s, Tp = 121 s");

    bool ten_tc_breaks_everything = true;
    bool breakup_harder_with_n = true;

    for (const double tc : {0.01, 0.11}) {
        for (const int n : {10, 20, 30}) {
            section("Tc = " + std::to_string(tc) + " s, N = " + std::to_string(n));
            std::printf("%7s %16s %16s\n", "Tr/Tc", "g1_s", "fN_s");
            // Same accumulation as the old serial loop (bit-identical
            // factors); chain evaluations fan out, printing stays serial.
            std::vector<double> grid;
            for (double factor = 0.6; factor <= 8.01; factor += 0.4) {
                grid.push_back(factor);
            }
            struct Row {
                double g1, fn;
            };
            const auto rows =
                parallel::map_index<Row>(grid.size(), jobs, [&](std::size_t i) {
                    const auto chain = make_chain(n, tc, grid[i] * tc);
                    return Row{chain.time_to_break_up_seconds(),
                               chain.time_to_synchronize_seconds()};
                });
            for (std::size_t i = 0; i < grid.size(); ++i) {
                std::printf("%7.1f %16s %16s\n", grid[i],
                            fmt_time(rows[i].g1).c_str(),
                            fmt_time(rows[i].fn).c_str());
            }
            const double g_at_10tc =
                make_chain(n, tc, 10.0 * tc).time_to_break_up_seconds();
            std::printf("g(1) at Tr = 10*Tc: %s\n", fmt_time(g_at_10tc).c_str());
            if (!(g_at_10tc < 2e5)) {
                ten_tc_breaks_everything = false;
            }
        }
        // Larger N holds clusters together longer at the same Tr/Tc.
        const double g10 = make_chain(10, tc, 3.0 * tc).time_to_break_up_seconds();
        const double g30 = make_chain(30, tc, 3.0 * tc).time_to_break_up_seconds();
        if (!(g30 > g10)) {
            breakup_harder_with_n = false;
        }
    }

    check(ten_tc_breaks_everything,
          "Tr >= 10*Tc breaks clusters up quickly for every (N, Tc) in the sweep "
          "(the paper's rule of thumb)");
    check(breakup_harder_with_n,
          "at fixed Tr/Tc, larger networks hold synchronization longer");

    return footer();
}
