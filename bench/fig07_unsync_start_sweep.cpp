// Figure 7 — "Simulations starting with unsynchronized updates, for
// different values for Tr": cluster graphs for Tr in {0.6, 1.0, 1.4} * Tc
// over up to 10^7 s. The paper's labels: synchronization after 498 rounds
// (17 hours) at 0.6*Tc and after 7796 rounds at 1.0*Tc; larger Tr takes
// longer and longer.
//
// The 3 x 5 trial grid runs through the work-stealing SweepScheduler
// (--jobs N): all trials pool into one task set, idle workers steal from
// the slow Tr values, and results are consumed in submission order, so
// the output is byte-identical for every jobs value.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/core.hpp"
#include "parallel/parallel.hpp"

using namespace routesync;
using namespace routesync::bench;

int main(int argc, char** argv) {
    const Options& options = parse_options(argc, argv);
    const std::size_t jobs = options.jobs;
    header("Figure 7",
           "time to synchronize vs Tr, unsynchronized start (Tc = 0.11 s)");

    const double tc = 0.11;
    const int kSeeds = 5; // time-to-sync is heavy-tailed; average a few runs
    const std::vector<double> factors{0.6, 1.0, 1.4};

    std::vector<core::ExperimentConfig> configs;
    for (const double factor : factors) {
        for (int seed = 1; seed <= kSeeds; ++seed) {
            core::ExperimentConfig cfg;
            cfg.params.n = 20;
            cfg.params.tp = sim::SimTime::seconds(121);
            cfg.params.tc = sim::SimTime::seconds(tc);
            cfg.params.tr = sim::SimTime::seconds(factor * tc);
            cfg.params.seed = static_cast<std::uint64_t>(seed * 31);
            cfg.max_time = sim::SimTime::seconds(1e7);
            cfg.stop_on_full_sync = true;
            cfg.record_rounds = seed == 1;
            configs.push_back(cfg);
        }
    }
    const auto results =
        parallel::SweepScheduler{{.jobs = jobs, .batch = options.batch}}.run_all(configs);
    parallel::merge_sweep_into(opts().ctx, results);

    std::vector<double> sync_means;
    for (std::size_t fi = 0; fi < factors.size(); ++fi) {
        const double factor = factors[fi];
        double total = 0.0;
        int capped = 0;
        for (int seed = 1; seed <= kSeeds; ++seed) {
            const auto& r =
                results[fi * static_cast<std::size_t>(kSeeds) +
                        static_cast<std::size_t>(seed - 1)];

            if (seed == 1) {
                section("cluster graph, Tr = " + std::to_string(factor) +
                        " * Tc, seed 31 (decimated)");
                std::printf("%10s %8s\n", "time_s", "largest");
                const std::size_t stride =
                    std::max<std::size_t>(1, r.rounds.size() / 60);
                for (std::size_t i = 0; i < r.rounds.size(); i += stride) {
                    std::printf("%10.0f %8d\n", r.rounds[i].end_time.sec(),
                                r.rounds[i].largest);
                }
            }
            if (r.full_sync_time_sec) {
                total += *r.full_sync_time_sec;
            } else {
                total += 1e7;
                ++capped;
            }
        }
        const double mean = total / kSeeds;
        std::printf("Tr = %.1f*Tc: mean time to sync %.4g s over %d seeds"
                    " (%d capped at 1e7 s)\n",
                    factor, mean, kSeeds, capped);
        sync_means.push_back(mean);
    }

    section("summary");
    std::printf("%8s %18s\n", "Tr/Tc", "mean_time_to_sync_s");
    for (std::size_t i = 0; i < sync_means.size(); ++i) {
        std::printf("%8.1f %18.4g\n", factors[i], sync_means[i]);
    }

    check(sync_means[0] < sync_means[1] && sync_means[1] < sync_means[2],
          "mean time to synchronize grows with Tr");
    check(sync_means[2] > 3.0 * sync_means[0],
          "growth is steep across the sweep (paper: 498 -> 7796 rounds and "
          "beyond)");
    check(sync_means[0] < 5e5, "at Tr = 0.6*Tc the system synchronizes quickly");

    return footer();
}
