// Figure 11 — "The expected time to reach cluster size i, starting from
// cluster size N, for Tr = 0.3 seconds": the chain's (Tp + Tc) * g(i)
// against twenty simulations from a synchronized start.
//
// The twenty trials pool in the work-stealing SweepScheduler (--jobs N);
// stats accumulate over results in seed order, so output is
// byte-identical for every jobs value.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/core.hpp"
#include "markov/markov.hpp"
#include "parallel/parallel.hpp"
#include "stats/stats.hpp"

using namespace routesync;
using namespace routesync::bench;

int main(int argc, char** argv) {
    const Options& options = parse_options(argc, argv);
    const std::size_t jobs = options.jobs;
    header("Figure 11",
           "time to first come down to each cluster size from synchronized "
           "start (N=20, Tp=121 s, Tc=0.11 s, Tr=0.3 s)");

    markov::ChainParams cp;
    cp.n = 20;
    cp.tp_sec = 121.0;
    cp.tr_sec = 0.3;
    cp.tc_sec = 0.11;
    cp.f2_rounds = 19.0; // irrelevant for g (Eq. 6 does not involve f(2))
    const markov::FJChain chain{cp};
    const auto g = chain.g_rounds();

    const int kSims = 20;
    std::vector<stats::RunningStats> hit(21);
    const auto results = parallel::SweepScheduler{{.jobs = jobs, .batch = options.batch}}.run_generated(
        static_cast<std::size_t>(kSims), [](std::size_t i) {
            core::ExperimentConfig cfg;
            cfg.params.n = 20;
            cfg.params.tp = sim::SimTime::seconds(121);
            cfg.params.tc = sim::SimTime::seconds(0.11);
            cfg.params.tr = sim::SimTime::seconds(0.3);
            cfg.params.start = core::StartCondition::Synchronized;
            cfg.params.seed = static_cast<std::uint64_t>(i + 101); // 101..120
            cfg.max_time = sim::SimTime::seconds(3e6);
            cfg.stop_on_breakup_threshold = 1;
            return cfg;
        });
    parallel::merge_sweep_into(opts().ctx, results);
    for (const auto& r : results) {
        for (int s = 1; s <= 19; ++s) {
            if (r.first_hit_down[static_cast<std::size_t>(s)]) {
                hit[static_cast<std::size_t>(s)].add(
                    *r.first_hit_down[static_cast<std::size_t>(s)]);
            }
        }
    }

    section("series: cluster size vs time (s) — analysis and simulation mean");
    std::printf("%5s %14s %14s %10s\n", "size", "analysis_s", "sim_mean_s", "sims");
    for (int s = 19; s >= 1; --s) {
        const auto idx = static_cast<std::size_t>(s);
        std::printf("%5d %14s %14.5g %10llu\n", s,
                    fmt_time(g[idx] * chain.round_seconds()).c_str(),
                    hit[idx].mean(),
                    static_cast<unsigned long long>(hit[idx].count()));
    }

    const double analysis_full = g[1] * chain.round_seconds();
    const double sim_full = hit[1].mean();
    section("summary");
    std::printf("analysis g(1)    : %.0f s\n", analysis_full);
    std::printf("simulation mean  : %.0f s (over %llu runs)\n", sim_full,
                static_cast<unsigned long long>(hit[1].count()));
    std::printf("ratio            : %.2f (paper: 'two or three times')\n",
                analysis_full / sim_full);

    check(hit[1].count() == kSims, "every simulation fully unsynchronized");
    const double ratio = analysis_full / sim_full;
    check(ratio > 1.0 && ratio < 10.0,
          "analysis over-predicts by a small factor (paper: 2-3x)");
    bool monotone = true;
    for (int s = 2; s <= 19; ++s) {
        if (hit[static_cast<std::size_t>(s)].mean() >
            hit[static_cast<std::size_t>(s - 1)].mean() + 1e-9) {
            monotone = false;
        }
    }
    check(monotone, "simulated first-hit-down times grow as the target shrinks");

    return footer();
}
