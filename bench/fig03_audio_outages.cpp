// Figure 3 — "Periodic packet losses from (conjectured) synchronized RIP
// routing messages": audio outage durations over time. Large spikes every
// 30 s lasting seconds (50-95 % in-storm loss), plus random single-packet
// blips from background cross traffic.
#include <algorithm>
#include <cstdio>

#include "bench/common.hpp"
#include "scenarios/scenarios.hpp"
#include "stats/stats.hpp"

using namespace routesync;
using namespace routesync::bench;

int main(int argc, char** argv) {
    Options& options = parse_options(
        argc, argv, "Figure 3: audio outages under synchronized RIP");
    options.sim_seconds = 720.0;
    header("Figure 3",
           "audio outage durations vs time under synchronized 30 s RIP updates");

    scenarios::AudiocastScenario s{scenarios::AudiocastConfig{}, &options.ctx};
    apps::CbrConfig cc;
    cc.dst = s.audio_dst().id();
    cc.packets_per_second = 50.0;
    cc.stop_at = sim::SimTime::seconds(705);
    apps::CbrSource src{s.audio_src(), cc};
    apps::AudioSink sink{s.audio_dst(), sim::SimTime::seconds(0.02)};
    apps::BackgroundConfig bg;
    bg.dst = s.bg_dst().id();
    bg.mean_packets_per_second = 270.0;
    bg.stop_at = sim::SimTime::seconds(705);
    bg.seed = 99;
    apps::BackgroundTraffic cross{s.bg_src(), bg};

    const auto t0 = s.routing_start() + sim::SimTime::seconds(95);
    src.start(t0);
    cross.start(t0);
    s.engine().run_until(sim::SimTime::seconds(720));
    s.collect_metrics(options.ctx);

    section("series: outage start (s, relative) vs duration (s) and loss count");
    std::printf("%10s %10s %8s\n", "time_s", "outage_s", "lost");
    for (const auto& o : sink.outages()) {
        std::printf("%10.2f %10.3f %8llu\n", o.start_sec - t0.sec(), o.duration_sec,
                    static_cast<unsigned long long>(o.packets_lost));
    }

    const auto spikes = sink.outages_longer_than(0.5);
    const auto blips = sink.outages().size() - spikes.size();

    section("summary");
    std::printf("total outages  : %zu (%zu periodic spikes, %zu random blips)\n",
                sink.outages().size(), spikes.size(), blips);
    std::printf("packets lost   : %llu of %llu (%.1f%%)\n",
                static_cast<unsigned long long>(sink.lost()),
                static_cast<unsigned long long>(src.sent()),
                100.0 * static_cast<double>(sink.lost()) /
                    static_cast<double>(std::max<std::uint64_t>(src.sent(), 1)));

    stats::RunningStats gaps;
    for (std::size_t i = 1; i < spikes.size(); ++i) {
        gaps.add(spikes[i].start_sec - spikes[i - 1].start_sec);
    }
    stats::RunningStats durations;
    double in_storm_loss = 0.0;
    for (const auto& o : spikes) {
        durations.add(o.duration_sec);
        // Within the storm window, the loss rate is lost / (window * rate).
        in_storm_loss = std::max(
            in_storm_loss, static_cast<double>(o.packets_lost) /
                               (o.duration_sec * 50.0 + static_cast<double>(o.packets_lost)));
    }
    std::printf("spike spacing  : mean %.1f s (paper: every 30 s)\n", gaps.mean());
    std::printf("spike duration : mean %.2f s, max %.2f s (paper: several seconds)\n",
                durations.mean(), durations.max());

    check(spikes.size() >= 15, "periodic loss spikes occur throughout the run");
    check(gaps.count() > 0 && gaps.mean() > 27 && gaps.mean() < 33,
          "spikes recur every ~30 s (the RIP update period)");
    check(durations.mean() >= 0.5 && durations.max() <= 10.0,
          "spikes last on the order of seconds");
    check(blips >= 3, "random single-packet blips from cross traffic");

    return footer();
}
