// Ablation — does ignoring Ethernet contention matter?
//
// The Periodic Messages model "ignores properties of physical networks
// such as the possibility of collisions and retransmissions on an
// Ethernet" (Section 3). Here the same periodic-router workload runs over
// a real CSMA/CD medium: routers broadcast their updates as frames,
// colliding and backing off, and every receiver pays Tc of processing per
// update with the paper's reset-after-processing timer rule.
//
// Result: collisions and contention jitter (sub-millisecond) are three
// orders of magnitude below the processing time Tc (~0.1 s), so the
// synchronization phenomenon survives intact — the model's abstraction is
// sound.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/core.hpp"
#include "net/elements/callback_sink.hpp"
#include "net/elements/element_graph.hpp"
#include "net/elements/periodic_agent.hpp"
#include "net/shared_lan.hpp"
#include "stats/stats.hpp"

using namespace routesync;
using namespace routesync::bench;

namespace {

/// Wires one PeriodicAgent element onto a LAN station: the agent's "out"
/// pushes into a sink that transmits on the medium, and the station's
/// receive callback feeds the agent's ear. The paper's timer rule
/// (reset-after-processing, Tc per update) lives in the element now —
/// this bench is just topology.
net::elements::PeriodicAgent& attach_lan_router(
    net::elements::ElementGraph& graph, net::SharedLan& lan, int id,
    const net::elements::PeriodicAgentConfig& config) {
    auto& agent = graph.add<net::elements::PeriodicAgent>(
        "agent" + std::to_string(id), config);
    const int station =
        lan.attach([&agent](const net::Packet& p) { agent.hear(p); });
    graph.add<net::elements::CallbackSink>(
        "tolan" + std::to_string(id),
        [&lan, station](net::PooledPacket p) { lan.send(station, std::move(p)); });
    graph.connect("agent" + std::to_string(id), 0,
                  "tolan" + std::to_string(id), 0);
    return agent;
}

} // namespace

int main(int argc, char** argv) {
    parse_options(argc, argv);
    header("Ablation",
           "the Periodic Messages workload over a real CSMA/CD Ethernet "
           "(N=20, Tp=121 s, Tr=0.1 s, Tc=0.11 s)");

    sim::Engine engine;
    net::SharedLanConfig lan_cfg; // classic 10 Mb/s Ethernet
    net::SharedLan lan{engine, lan_cfg};

    const int n = 20;
    const auto tp = sim::SimTime::seconds(121);
    const auto tr = sim::SimTime::seconds(0.1);
    const auto tc = sim::SimTime::seconds(0.11);

    net::elements::ElementGraph graph{engine};
    // Loose tolerance: LAN delivery skews cluster members' busy-ends by up
    // to ~N * frame_time (~10 ms), far below Tc.
    core::ClusterTracker tracker{n, tp + tc, sim::SimTime::millis(50)};
    rng::DefaultEngine phases{1234};
    for (int i = 0; i < n; ++i) {
        net::elements::PeriodicAgentConfig cfg;
        cfg.node = i;
        cfg.period = tp;
        cfg.jitter = tr;
        cfg.process_cost = tc;
        cfg.update_bytes = 1000;
        cfg.seed = 400 + static_cast<std::uint64_t>(i);
        auto& agent = attach_lan_router(graph, lan, i, cfg);
        agent.on_timer_set = [&tracker](int node, sim::SimTime t) {
            tracker.on_timer_set(node, t);
        };
        agent.start(
            sim::SimTime::seconds(rng::uniform_real(phases, 0.0, tp.sec())));
    }
    graph.finalize();
    tracker.on_full_sync = [&engine](sim::SimTime) { engine.stop(); };

    engine.run_until(sim::SimTime::seconds(2e6));
    tracker.finish();

    section("results");
    const auto sync = tracker.full_sync_time();
    std::printf("full synchronization : %s s\n",
                sync ? fmt_time(sync->sec()).c_str() : "not reached (2e6 s cap)");
    const auto& ls = lan.stats();
    std::printf("frames delivered     : %llu\n",
                static_cast<unsigned long long>(ls.frames_delivered));
    std::printf("collisions           : %llu (%.2f%% of offered frames)\n",
                static_cast<unsigned long long>(ls.collisions),
                100.0 * static_cast<double>(ls.collisions) /
                    static_cast<double>(ls.frames_offered));
    std::printf("frames lost          : %llu\n",
                static_cast<unsigned long long>(ls.drops_excessive_collisions +
                                                ls.drops_queue_full));

    check(sync.has_value(),
          "synchronization emerges despite collisions and backoff "
          "(the Section 3 abstraction is sound)");
    check(ls.collisions > 0,
          "contention genuinely occurred (the ablation exercised CSMA/CD)");
    check(ls.drops_excessive_collisions == 0,
          "binary exponential backoff resolved every collision");

    return footer();
}
