// Ablation — does ignoring Ethernet contention matter?
//
// The Periodic Messages model "ignores properties of physical networks
// such as the possibility of collisions and retransmissions on an
// Ethernet" (Section 3). Here the same periodic-router workload runs over
// a real CSMA/CD medium: routers broadcast their updates as frames,
// colliding and backing off, and every receiver pays Tc of processing per
// update with the paper's reset-after-processing timer rule.
//
// Result: collisions and contention jitter (sub-millisecond) are three
// orders of magnitude below the processing time Tc (~0.1 s), so the
// synchronization phenomenon survives intact — the model's abstraction is
// sound.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/core.hpp"
#include "net/shared_lan.hpp"
#include "stats/stats.hpp"

using namespace routesync;
using namespace routesync::bench;

namespace {

// A periodic router on the LAN, with the Periodic Messages timer rule.
class LanRouter {
public:
    LanRouter(sim::Engine& engine, net::SharedLan& lan, int id,
              sim::SimTime tp, sim::SimTime tr, sim::SimTime tc,
              std::uint64_t seed)
        : engine_{engine}, lan_{lan}, id_{id}, tp_{tp}, tr_{tr}, tc_{tc},
          gen_{seed} {
        station_ = lan_.attach([this](const net::Packet& p) { receive(p); });
    }

    void start(sim::SimTime at) {
        engine_.schedule_at(at, [this] { timer_expired(); });
    }

    std::function<void(int, sim::SimTime)> on_timer_set;

private:
    void timer_expired() {
        net::Packet update;
        update.type = net::PacketType::RoutingUpdate;
        update.src = id_;
        update.size_bytes = 1000;
        lan_.send(station_, update);
        pending_own_ = true;
        extend_busy();
        if (!check_scheduled_) {
            check_scheduled_ = true;
            engine_.schedule_at(busy_end_, [this] { busy_check(); });
        }
    }

    void receive(const net::Packet&) { extend_busy(); }

    void extend_busy() {
        const sim::SimTime now = engine_.now();
        busy_end_ = busy_end_ > now ? busy_end_ + tc_ : now + tc_;
        if (pending_own_ && !check_scheduled_) {
            check_scheduled_ = true;
            engine_.schedule_at(busy_end_, [this] { busy_check(); });
        }
    }

    void busy_check() {
        if (busy_end_ > engine_.now()) {
            engine_.schedule_at(busy_end_, [this] { busy_check(); });
            return;
        }
        check_scheduled_ = false;
        if (pending_own_) {
            pending_own_ = false;
            if (on_timer_set) {
                on_timer_set(id_, engine_.now());
            }
            const double interval =
                rng::uniform_real(gen_, (tp_ - tr_).sec(), (tp_ + tr_).sec());
            engine_.schedule_after(sim::SimTime::seconds(interval),
                                   [this] { timer_expired(); });
        }
    }

    sim::Engine& engine_;
    net::SharedLan& lan_;
    int id_;
    int station_ = -1;
    sim::SimTime tp_;
    sim::SimTime tr_;
    sim::SimTime tc_;
    rng::DefaultEngine gen_;
    sim::SimTime busy_end_ = -sim::SimTime::seconds(1);
    bool pending_own_ = false;
    bool check_scheduled_ = false;
};

} // namespace

int main(int argc, char** argv) {
    parse_options(argc, argv);
    header("Ablation",
           "the Periodic Messages workload over a real CSMA/CD Ethernet "
           "(N=20, Tp=121 s, Tr=0.1 s, Tc=0.11 s)");

    sim::Engine engine;
    net::SharedLanConfig lan_cfg; // classic 10 Mb/s Ethernet
    net::SharedLan lan{engine, lan_cfg};

    const int n = 20;
    const auto tp = sim::SimTime::seconds(121);
    const auto tr = sim::SimTime::seconds(0.1);
    const auto tc = sim::SimTime::seconds(0.11);

    std::vector<std::unique_ptr<LanRouter>> routers;
    // Loose tolerance: LAN delivery skews cluster members' busy-ends by up
    // to ~N * frame_time (~10 ms), far below Tc.
    core::ClusterTracker tracker{n, tp + tc, sim::SimTime::millis(50)};
    rng::DefaultEngine phases{1234};
    for (int i = 0; i < n; ++i) {
        routers.push_back(std::make_unique<LanRouter>(
            engine, lan, i, tp, tr, tc, 400 + static_cast<std::uint64_t>(i)));
        routers.back()->on_timer_set = [&tracker](int node, sim::SimTime t) {
            tracker.on_timer_set(node, t);
        };
        routers.back()->start(
            sim::SimTime::seconds(rng::uniform_real(phases, 0.0, tp.sec())));
    }
    tracker.on_full_sync = [&engine](sim::SimTime) { engine.stop(); };

    engine.run_until(sim::SimTime::seconds(2e6));
    tracker.finish();

    section("results");
    const auto sync = tracker.full_sync_time();
    std::printf("full synchronization : %s s\n",
                sync ? fmt_time(sync->sec()).c_str() : "not reached (2e6 s cap)");
    const auto& ls = lan.stats();
    std::printf("frames delivered     : %llu\n",
                static_cast<unsigned long long>(ls.frames_delivered));
    std::printf("collisions           : %llu (%.2f%% of offered frames)\n",
                static_cast<unsigned long long>(ls.collisions),
                100.0 * static_cast<double>(ls.collisions) /
                    static_cast<double>(ls.frames_offered));
    std::printf("frames lost          : %llu\n",
                static_cast<unsigned long long>(ls.drops_excessive_collisions +
                                                ls.drops_queue_full));

    check(sync.has_value(),
          "synchronization emerges despite collisions and backoff "
          "(the Section 3 abstraction is sound)");
    check(ls.collisions > 0,
          "contention genuinely occurred (the ablation exercised CSMA/CD)");
    check(ls.drops_excessive_collisions == 0,
          "binary exponential backoff resolved every collision");

    return footer();
}
