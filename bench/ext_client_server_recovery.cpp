// Extension bench — the paper's Section 1 client-server example, the
// Sprite file server [Ba92]:
//
//   "when the file server recovered after a failure ... a number of
//    clients would become synchronized in their recovery procedures.
//    Because the recovery procedures involved synchronized timeouts, this
//    synchronization resulted in a substantial delay in the recovery
//    procedure."
//
// 60 clients re-register after a recovery broadcast. Synchronized
// re-registration overloads the serial server, clients time out while
// their requests sit queued, the server then serves those *stale*
// requests for nothing, and the timed-out clients retry in lockstep.
// Randomizing the re-registration delay recovers at the serial-service
// floor with zero waste.
#include <cstdio>

#include "bench/common.hpp"
#include "clientsync/poll_sync.hpp"

using namespace routesync;
using namespace routesync::bench;

int main(int argc, char** argv) {
    parse_options(argc, argv);
    header("Extension (paper Section 1)",
           "client-server recovery storms (Sprite): synchronized vs "
           "randomized re-registration");

    clientsync::ClientServerConfig base;
    base.clients = 60;
    base.service_time_sec = 0.2; // serial floor: 12 s for 60 clients

    section("60 clients, 0.2 s service, 5 s timeout, server down 100-160 s");
    std::printf("%-28s %12s %10s %10s %10s\n", "re-registration", "recovery_s",
                "stale", "timeouts", "peak_queue");

    const auto sync_result = clientsync::run_client_server_experiment(base);
    std::printf("%-28s %12.1f %10llu %10llu %10.0f\n", "synchronized (Sprite)",
                sync_result.recovery_duration_sec,
                static_cast<unsigned long long>(sync_result.stale_served),
                static_cast<unsigned long long>(sync_result.timeouts),
                sync_result.peak_queue);

    clientsync::ClientServerConfig spread = base;
    spread.recovery_spread_sec = 12.0;
    const auto spread_result = clientsync::run_client_server_experiment(spread);
    std::printf("%-28s %12.1f %10llu %10llu %10.0f\n", "uniform [0, 12 s]",
                spread_result.recovery_duration_sec,
                static_cast<unsigned long long>(spread_result.stale_served),
                static_cast<unsigned long long>(spread_result.timeouts),
                spread_result.peak_queue);

    section("summary");
    std::printf("serial-service floor: %.1f s; synchronized recovery takes "
                "%.1fx that, randomized %.2fx\n",
                60 * 0.2, sync_result.recovery_duration_sec / 12.0,
                spread_result.recovery_duration_sec / 12.0);

    check(sync_result.all_recovered && spread_result.all_recovered,
          "every client eventually recovers under both schemes");
    check(sync_result.recovery_duration_sec >
              1.5 * spread_result.recovery_duration_sec,
          "synchronized re-registration substantially delays recovery "
          "(the paper's 'substantial delay')");
    check(sync_result.stale_served > 20 && spread_result.stale_served == 0,
          "the synchronized storm wastes server time on timed-out requests; "
          "randomization wastes none");
    check(spread_result.recovery_duration_sec < 16.0,
          "randomized re-registration recovers near the serial floor");

    return footer();
}
