// Figure 14 — "The fraction of time unsynchronized, as a function of the
// random component Tr": f(N)/(f(N)+g(1)) for N = 20. The paper's point:
// the flip from predominately-synchronized to predominately-unsynchronized
// is sharp, not gradual.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "markov/markov.hpp"
#include "parallel/parallel.hpp"

using namespace routesync;
using namespace routesync::bench;

namespace {

double fraction_at(double tr_over_tc) {
    markov::ChainParams p;
    p.n = 20;
    p.tp_sec = 121.0;
    p.tc_sec = 0.11;
    p.tr_sec = tr_over_tc * p.tc_sec;
    p.f2_rounds = markov::f2_diffusion_estimate(p.n, p.tp_sec, p.tr_sec);
    return markov::FJChain{p}.fraction_unsynchronized();
}

} // namespace

int main(int argc, char** argv) {
    const std::size_t jobs = parse_options(argc, argv).jobs;
    header("Figure 14",
           "fraction of time unsynchronized vs Tr (N=20, Tp=121 s, Tc=0.11 s)");

    section("series: Tr/Tc vs fraction unsynchronized");
    std::printf("%7s %12s\n", "Tr/Tc", "fraction");
    double lo_edge = -1.0;
    double hi_edge = -1.0;
    std::vector<double> grid;
    for (double factor = 0.5; factor <= 3.001; factor += 0.05) {
        grid.push_back(factor);
    }
    const auto fracs = parallel::map_index<double>(
        grid.size(), jobs, [&](std::size_t i) { return fraction_at(grid[i]); });
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const double frac = fracs[i];
        std::printf("%7.2f %12.6f\n", grid[i], frac);
        if (lo_edge < 0 && frac > 0.1) {
            lo_edge = grid[i];
        }
        if (hi_edge < 0 && frac > 0.9) {
            hi_edge = grid[i];
        }
    }

    section("summary");
    std::printf("transition: fraction crosses 0.1 at Tr = %.2f*Tc and 0.9 at "
                "Tr = %.2f*Tc (width %.2f*Tc)\n",
                lo_edge, hi_edge, hi_edge - lo_edge);
    const double tr_star =
        markov::critical_tr_seconds(markov::ChainParams{
            .n = 20, .tp_sec = 121.0, .tr_sec = 0.11, .tc_sec = 0.11,
            .f2_rounds = 19.0});
    std::printf("bisected 50%% threshold: Tr* = %.3f s = %.2f*Tc\n", tr_star,
                tr_star / 0.11);

    check(fraction_at(1.0) < 0.05,
          "Tr ~ Tc: predominately synchronized (paper's left region)");
    check(fraction_at(2.8) > 0.95,
          "Tr ~ 2.8*Tc: predominately unsynchronized (paper's right region)");
    check(lo_edge > 0 && hi_edge > 0 && (hi_edge - lo_edge) <= 0.75,
          "the transition is sharp: 0.1 -> 0.9 within ~half a Tc of jitter");
    check(lo_edge >= 1.0 && hi_edge <= 2.8,
          "the transition falls inside the paper's 1.0-2.5 Tr/Tc window");

    return footer();
}
