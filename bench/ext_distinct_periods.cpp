// Extension — the paper's open question, investigated.
//
// Section 6: "an alternate strategy might be to set the routing update
// interval at each router to a different random value. The consequences
// of having a slightly-different fixed period for each router would
// require further investigation."
//
// Here is that investigation. N = 20 routers get *fixed, distinct* periods
// 121 + k*delta (no per-round jitter at all), from a worst-case
// synchronized start. The busy-period coupling can entrain oscillators of
// different natural frequencies: after a joint reset the next expirations
// are spaced delta apart, and the cluster's processing chain holds exactly
// when those gaps stay below Tc. So:
//
//   * delta < Tc  — the periods *entrain*: distinct periods do NOT prevent
//     synchronization (administrators spacing timers by a few tens of
//     milliseconds gain nothing);
//   * delta > Tc  — the chain cannot hold and the cluster dissolves, but
//     the total spread needed is N*delta > N*Tc — for the paper's
//     parameters over 2 seconds of deliberate per-router skew, at which
//     point simply jittering the timer (Section 6's main recommendation)
//     is easier and also handles triggered updates.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/core.hpp"
#include "parallel/parallel.hpp"

using namespace routesync;
using namespace routesync::bench;

namespace {

struct Outcome {
    double unsync_fraction;
    int final_largest;
};

Outcome run(double delta) {
    core::ExperimentConfig cfg;
    cfg.params.n = 20;
    cfg.params.tp = sim::SimTime::seconds(121);
    cfg.params.tc = sim::SimTime::seconds(0.11);
    cfg.params.tr = sim::SimTime::zero(); // fixed periods: no jitter at all
    cfg.params.start = core::StartCondition::Synchronized;
    cfg.params.seed = 7;
    for (int k = 0; k < 20; ++k) {
        cfg.params.per_node_tp.push_back(121.0 + delta * k);
    }
    cfg.max_time = sim::SimTime::seconds(3e5);
    cfg.record_rounds = true;
    const auto r = core::run_experiment(cfg);

    Outcome out{};
    out.unsync_fraction =
        r.rounds_closed == 0
            ? 0.0
            : static_cast<double>(r.rounds_unsynchronized) /
                  static_cast<double>(r.rounds_closed);
    out.final_largest = r.rounds.empty() ? 0 : r.rounds.back().largest;
    return out;
}

} // namespace

int main(int argc, char** argv) {
    Options& options = parse_options(
        argc, argv,
        "distinct fixed periods per router: entrainment vs dispersion");
    const std::size_t jobs = options.jobs;
    options.sim_seconds = 3e5;
    header("Extension (paper Section 6 open question)",
           "distinct fixed periods per router: entrainment vs dispersion "
           "(N=20, Tc=0.11 s, synchronized start, 3e5 s)");

    section("series: per-router period spacing delta vs outcome");
    if (FILE* f = chatter()) {
        std::fprintf(f, "%12s %12s %18s %14s\n", "delta_s", "delta/Tc",
                     "frac_rounds_unsync", "final_largest");
    }
    const std::vector<double> deltas{0.001, 0.01, 0.05, 0.09, 0.15, 0.25, 0.5};
    // One independent simulation per delta, fanned over the workers; the
    // printed rows (and the summary checks below, which reuse the sweep
    // results) stay in deterministic delta order regardless of --jobs.
    const std::vector<Outcome> outcomes = parallel::map_index<Outcome>(
        deltas.size(), jobs, [&](std::size_t i) { return run(deltas[i]); });
    double small_delta_largest = 0;
    double large_delta_unsync = 0;
    for (std::size_t i = 0; i < deltas.size(); ++i) {
        const double delta = deltas[i];
        const Outcome& out = outcomes[i];
        if (FILE* f = chatter()) {
            std::fprintf(f, "%12.3f %12.2f %18.3f %14d\n", delta, delta / 0.11,
                         out.unsync_fraction, out.final_largest);
        }
        if (options.json) {
            std::printf("{\"delta_s\": %.3f, \"delta_over_tc\": %.2f, "
                        "\"frac_rounds_unsync\": %.3f, \"final_largest\": %d}\n",
                        delta, delta / 0.11, out.unsync_fraction,
                        out.final_largest);
        }
        if (delta <= 0.05) {
            small_delta_largest =
                std::max(small_delta_largest, static_cast<double>(out.final_largest));
        }
        if (delta >= 0.25) {
            large_delta_unsync = std::max(large_delta_unsync, out.unsync_fraction);
        }
    }

    section("summary");
    if (FILE* f = chatter()) {
        std::fprintf(f, "entrainment threshold is the processing time Tc = 0.11 s: the\n"
                "cluster's expiry chain holds while consecutive period gaps stay\n"
                "below Tc, so 'slightly-different' fixed periods do not prevent\n"
                     "synchronization; dispersing N routers needs > N*Tc (%.1f s) of\n"
                     "total deliberate skew.\n",
                     20 * 0.11);
    }

    const Outcome& entrained = outcomes[2];  // delta = 0.05
    const Outcome& dispersed = outcomes[6];  // delta = 0.5
    const Outcome& absorbed = outcomes[0];   // delta = 0.001
    check(entrained.final_largest == 20 && entrained.unsync_fraction < 0.05,
          "delta = 0.45*Tc: distinct periods ENTRAIN — synchronization persists");
    check(dispersed.unsync_fraction > 0.5,
          "delta = 4.5*Tc: the chain cannot hold and the cluster disperses");
    check(absorbed.final_largest == 20,
          "millisecond-scale period differences are completely absorbed");

    return footer();
}
