// Figure 10 — "The expected time to reach cluster size i, starting from
// cluster size 1, for Tr = 0.1 seconds": the Markov chain's
// (Tp + Tc) * f(i) (solid line) against first-hit times from twenty
// simulations differing only in seed (dashed lines; heavy dash = mean).
// The paper's own conclusion: the chain over-predicts by 2-3x but matches
// the shape.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/core.hpp"
#include "markov/markov.hpp"
#include "parallel/parallel.hpp"
#include "stats/stats.hpp"

using namespace routesync;
using namespace routesync::bench;

int main(int argc, char** argv) {
    const Options& options = parse_options(argc, argv);
    const std::size_t jobs = options.jobs;
    header("Figure 10",
           "time to first reach each cluster size from unsynchronized start "
           "(N=20, Tp=121 s, Tc=0.11 s, Tr=0.1 s, f(2)=19 rounds)");

    markov::ChainParams cp;
    cp.n = 20;
    cp.tp_sec = 121.0;
    cp.tr_sec = 0.1;
    cp.tc_sec = 0.11;
    cp.f2_rounds = 19.0;
    const markov::FJChain chain{cp};
    const auto f = chain.f_rounds();

    // Twenty simulations, seeds 1..20, pooled in the work-stealing sweep
    // scheduler; the stats accumulate in seed order whatever the jobs
    // value.
    const int kSims = 20;
    std::vector<stats::RunningStats> hit(21);
    const auto results = parallel::SweepScheduler{{.jobs = jobs, .batch = options.batch}}.run_generated(
        static_cast<std::size_t>(kSims), [](std::size_t i) {
            core::ExperimentConfig cfg;
            cfg.params.n = 20;
            cfg.params.tp = sim::SimTime::seconds(121);
            cfg.params.tc = sim::SimTime::seconds(0.11);
            cfg.params.tr = sim::SimTime::seconds(0.1);
            cfg.params.seed = static_cast<std::uint64_t>(i + 1); // seeds 1..20
            cfg.max_time = sim::SimTime::seconds(2e6);
            cfg.stop_on_full_sync = true;
            return cfg;
        });
    parallel::merge_sweep_into(opts().ctx, results);
    for (const auto& r : results) {
        for (int s = 2; s <= 20; ++s) {
            if (r.first_hit_up[static_cast<std::size_t>(s)]) {
                hit[static_cast<std::size_t>(s)].add(
                    *r.first_hit_up[static_cast<std::size_t>(s)]);
            }
        }
    }

    section("series: cluster size vs time (s) — analysis and simulation mean");
    std::printf("%5s %14s %14s %10s\n", "size", "analysis_s", "sim_mean_s", "sims");
    for (int s = 2; s <= 20; ++s) {
        const auto idx = static_cast<std::size_t>(s);
        std::printf("%5d %14s %14.5g %10llu\n", s,
                    fmt_time(f[idx] * chain.round_seconds()).c_str(),
                    hit[idx].mean(),
                    static_cast<unsigned long long>(hit[idx].count()));
    }

    const double analysis_full = f[20] * chain.round_seconds();
    const double sim_full = hit[20].mean();
    section("summary");
    std::printf("analysis f(20)   : %.0f s\n", analysis_full);
    std::printf("simulation mean  : %.0f s (over %llu runs)\n", sim_full,
                static_cast<unsigned long long>(hit[20].count()));
    std::printf("ratio            : %.2f (paper: 'two or three times')\n",
                analysis_full / sim_full);

    check(hit[20].count() == kSims, "every simulation reached full synchronization");
    const double ratio = analysis_full / sim_full;
    check(ratio > 1.0 && ratio < 10.0,
          "analysis over-predicts by a small factor (paper: 2-3x)");
    bool monotone = true;
    for (int s = 3; s <= 20; ++s) {
        if (hit[static_cast<std::size_t>(s)].mean() <
            hit[static_cast<std::size_t>(s - 1)].mean() - 1e-9) {
            monotone = false;
        }
    }
    check(monotone, "simulated first-hit times are nondecreasing in cluster size");
    check(analysis_full < 6.5e5,
          "analysis lands on the paper's Figure 10 axis (< 600000 s)");

    return footer();
}
