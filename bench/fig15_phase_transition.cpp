// Figure 15 — "The fraction of time unsynchronized, as a function of the
// number of nodes" (Tp=121 s, Tc=0.11 s, Tr=0.3 s): the headline result
// that "the addition of a single router will convert a completely
// unsynchronized traffic stream into a completely synchronized one".
#include <cstdio>
#include <sstream>

#include "bench/common.hpp"
#include "core/core.hpp"
#include "markov/markov.hpp"
#include "parallel/parallel.hpp"

using namespace routesync;
using namespace routesync::bench;

namespace {

double fraction_at(int n) {
    markov::ChainParams p;
    p.n = n;
    p.tp_sec = 121.0;
    p.tc_sec = 0.11;
    p.tr_sec = 0.3;
    p.f2_rounds = markov::f2_diffusion_estimate(n, p.tp_sec, p.tr_sec);
    return markov::FJChain{p}.fraction_unsynchronized();
}

/// Simulation window for the measured time-to-sync column (same figure
/// parameters; a monitored run per N, stopping early at full sync).
constexpr double kSyncWindowSec = 1.5e5;

/// Detector level for the measured column. At Tr = 0.3 s the Markov
/// chain puts the first full synchronization >= 1e9 s out for every
/// plotted N (see fig13's fN column at Tr/Tc ~ 2.7), so the honest
/// measurement here is ">window" across the board: the figure's
/// "predominately synchronized" regime is a statement about the
/// stationary fraction, not about a transition any finite run observes.
/// The column demonstrates exactly that, and the shape check below holds
/// the simulation to the prediction.
constexpr double kSyncThreshold = 0.95;

/// Time to r >= kSyncThreshold in one monitored trial at this figure's
/// parameters, or -1 if not reached within the window.
double measured_time_to_sync(int n, std::uint64_t seed) {
    core::ExperimentConfig cfg;
    cfg.params.n = n;
    cfg.params.tp = sim::SimTime::seconds(121.0);
    cfg.params.tc = sim::SimTime::seconds(0.11);
    cfg.params.tr = sim::SimTime::seconds(0.3);
    cfg.params.seed = seed;
    cfg.max_time = sim::SimTime::seconds(kSyncWindowSec);
    cfg.stop_on_full_sync = true;
    cfg.monitor = true;
    cfg.sync_threshold = kSyncThreshold;
    const auto r = core::run_experiment(cfg);
    return r.sync.has_value() ? r.sync->time_to_sync_sec : -1.0;
}

} // namespace

int main(int argc, char** argv) {
    OptionsSpec spec;
    spec.description = "Figure 15: fraction of time unsynchronized vs N";
    spec.extra = {"bench-out"}; // BENCH_sweep.json path override
    Options& options = parse_options(argc, argv, spec);
    const std::size_t jobs = options.jobs;
    header("Figure 15",
           "fraction of time unsynchronized vs N (Tp=121 s, Tc=0.11 s, Tr=0.3 s)");

    section("series: N vs fraction unsynchronized vs simulated time-to-sync");
    std::printf("%5s %12s %14s\n", "N", "fraction", "sync_sim_s");
    int last_unsync = -1;
    int first_sync = -1;
    const int kFromN = 5;
    const int kToN = 32;
    struct Row {
        double fraction, sync_sim;
    };
    const std::uint64_t seed_base = options.seed_or(42);
    const auto rows = parallel::map_index<Row>(
        static_cast<std::size_t>(kToN - kFromN + 1), jobs, [&](std::size_t i) {
            const int n = kFromN + static_cast<int>(i);
            return Row{fraction_at(n),
                       measured_time_to_sync(n, seed_base + i)};
        });
    int first_sim_sync = -1;
    int last_sim_never = -1;
    std::ostringstream json_rows;
    for (int n = kFromN; n <= kToN; ++n) {
        const Row& row = rows[static_cast<std::size_t>(n - kFromN)];
        const double frac = row.fraction;
        std::printf("%5d %12.6f %14s\n", n, frac,
                    row.sync_sim >= 0.0 ? fmt_time(row.sync_sim).c_str()
                                        : ">window");
        if (frac > 0.9) {
            last_unsync = n;
        }
        if (first_sync < 0 && frac < 0.1) {
            first_sync = n;
        }
        if (first_sim_sync < 0 && row.sync_sim >= 0.0) {
            first_sim_sync = n;
        }
        if (row.sync_sim < 0.0) {
            last_sim_never = n;
        }
        json_rows << (n > kFromN ? ",\n" : "")
                  << "      {\"n\": " << n << ", \"fraction_unsync\": " << frac
                  << ", \"time_to_sync_sec\": " << row.sync_sim << "}";
    }

    markov::ChainParams p;
    p.n = 20;
    p.tp_sec = 121.0;
    p.tc_sec = 0.11;
    p.tr_sec = 0.3;
    p.f2_rounds = markov::f2_diffusion_estimate(25, p.tp_sec, p.tr_sec);
    const int n_star = markov::critical_n(p, 100);

    section("summary");
    std::printf("last predominately-unsynchronized N : %d\n", last_unsync);
    std::printf("first predominately-synchronized N  : %d\n", first_sync);
    std::printf("critical N (bisected at 50%%)        : %d\n", n_star);
    std::printf("first N syncing within %g s      : %s\n", kSyncWindowSec,
                first_sim_sync > 0 ? std::to_string(first_sim_sync).c_str()
                                   : "none (Markov: first sync >= 1e9 s)");

    {
        std::ostringstream out;
        out << "{\n    \"window_sec\": " << kSyncWindowSec
            << ",\n    \"threshold\": " << kSyncThreshold << ",\n    \"first_sim_sync_n\": "
            << first_sim_sync << ",\n    \"rows\": [\n" << json_rows.str()
            << "\n    ]\n  }";
        const std::string path =
            cli::flag_s(options.extra, "bench-out", "BENCH_sweep.json");
        write_json_section(path, "fig15_time_to_sync", out.str());
        if (FILE* f = chatter()) {
            std::fprintf(f, "wrote section \"fig15_time_to_sync\" of %s\n",
                         path.c_str());
        }
    }

    check(last_unsync > 0 && first_sync > 0,
          "both regimes appear within the plotted range");
    check(first_sim_sync < 0 && last_sim_never == kToN,
          "no plotted N reaches r >= 0.95 within the 1.5e5 s window, matching "
          "the Markov prediction of first sync >= 1e9 s at Tr = 0.3 s");
    check(first_sync - last_unsync <= 3,
          "the flip happens within a couple of routers ('the addition of a "
          "single router')");
    check(last_unsync >= 15 && first_sync <= 32,
          "the transition falls near the paper's N = 5..25 axis");

    return footer();
}
