// Figure 15 — "The fraction of time unsynchronized, as a function of the
// number of nodes" (Tp=121 s, Tc=0.11 s, Tr=0.3 s): the headline result
// that "the addition of a single router will convert a completely
// unsynchronized traffic stream into a completely synchronized one".
#include <cstdio>

#include "bench/common.hpp"
#include "markov/markov.hpp"
#include "parallel/parallel.hpp"

using namespace routesync;
using namespace routesync::bench;

namespace {

double fraction_at(int n) {
    markov::ChainParams p;
    p.n = n;
    p.tp_sec = 121.0;
    p.tc_sec = 0.11;
    p.tr_sec = 0.3;
    p.f2_rounds = markov::f2_diffusion_estimate(n, p.tp_sec, p.tr_sec);
    return markov::FJChain{p}.fraction_unsynchronized();
}

} // namespace

int main(int argc, char** argv) {
    const std::size_t jobs = parse_options(argc, argv).jobs;
    header("Figure 15",
           "fraction of time unsynchronized vs N (Tp=121 s, Tc=0.11 s, Tr=0.3 s)");

    section("series: N vs fraction unsynchronized");
    std::printf("%5s %12s\n", "N", "fraction");
    int last_unsync = -1;
    int first_sync = -1;
    const int kFromN = 5;
    const int kToN = 32;
    const auto fracs = parallel::map_index<double>(
        static_cast<std::size_t>(kToN - kFromN + 1), jobs,
        [](std::size_t i) { return fraction_at(kFromN + static_cast<int>(i)); });
    for (int n = kFromN; n <= kToN; ++n) {
        const double frac = fracs[static_cast<std::size_t>(n - kFromN)];
        std::printf("%5d %12.6f\n", n, frac);
        if (frac > 0.9) {
            last_unsync = n;
        }
        if (first_sync < 0 && frac < 0.1) {
            first_sync = n;
        }
    }

    markov::ChainParams p;
    p.n = 20;
    p.tp_sec = 121.0;
    p.tc_sec = 0.11;
    p.tr_sec = 0.3;
    p.f2_rounds = markov::f2_diffusion_estimate(25, p.tp_sec, p.tr_sec);
    const int n_star = markov::critical_n(p, 100);

    section("summary");
    std::printf("last predominately-unsynchronized N : %d\n", last_unsync);
    std::printf("first predominately-synchronized N  : %d\n", first_sync);
    std::printf("critical N (bisected at 50%%)        : %d\n", n_star);

    check(last_unsync > 0 && first_sync > 0,
          "both regimes appear within the plotted range");
    check(first_sync - last_unsync <= 3,
          "the flip happens within a couple of routers ('the addition of a "
          "single router')");
    check(last_unsync >= 15 && first_sync <= 32,
          "the transition falls near the paper's N = 5..25 axis");

    return footer();
}
