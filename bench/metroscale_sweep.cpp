// Metro-scale phase-transition sweep: the Figure 15 experiment — fraction
// of time unsynchronized vs N at Tp = 121 s, Tc = 0.11 s, Tr = 0.3 s —
// pushed from the paper's N = 5..32 axis up to N = 1e5 routers in a
// single simulated trial, on the packed-lane PM kernel.
//
// Each N rung is one SweepScheduler run (--jobs applies; the batch size
// is pinned to 1 so every trial runs the scalar kernel — the batched
// kernel's per-lane layout is leaner but different, and the auto-batcher's
// lane grouping depends on the worker count, which would make the memory
// column scheduling-dependent), timed wall-clock, and reported as:
//   * frac_unsync        rounds whose largest cluster was 1 / closed rounds
//   * ns/router-round    wall nanoseconds per (router x closed round)
//   * bytes/router       kernel state high-water (SoA lanes + calendar
//                        queue) divided by N — the number that decides
//                        whether 1e6 routers fit in memory
// plus the process peak RSS after the largest rung.
//
// The paper's qualitative result must survive the scale-up: small N stays
// predominately unsynchronized, and past the critical N (~20 at these
// parameters) the network locks up — so the fraction at the largest rung
// is near zero. At metro scale the entire first round collapses into one
// busy chain (1e5 expiries ~1.2 ms apart against an 0.11 s processing
// time), which is exactly the thousands-of-timers-per-bucket regime the
// kernel's sorted-run calendar consumption is built for.
//
// Writes the "metroscale" section of BENCH_sweep.json (or --out PATH;
// bench/sweep_wallclock owns the "sweep_wallclock" section of the same
// file).
//
// Extra flags:
//   --max-n N        largest rung to run (default 100000)
//   --sim-time SEC   simulated seconds per trial (default 20000)
//   --trials T       trials per rung for n <= 1000 (default 3; rungs
//                    above 1000 routers always run a single trial)
//   --bench-out PATH report file (default BENCH_sweep.json; --out stays
//                    the manifest path, as in every bench)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/core.hpp"
#include "obs/manifest.hpp"
#include "parallel/parallel.hpp"

using namespace routesync;
using namespace routesync::bench;

namespace {

struct Rung {
    int n = 0;
    int trials = 0;
    double wall_ms = 0.0;
    std::uint64_t rounds_closed = 0;
    std::uint64_t rounds_unsync = 0;
    std::uint64_t transmissions = 0;
    std::uint64_t kernel_state_bytes = 0; ///< max across the rung's trials
    double frac_unsync = 0.0;
    double ns_per_router_round = 0.0;
    double bytes_per_router = 0.0;
};

Rung run_rung(int n, int trials, double sim_seconds, std::uint64_t base_seed,
              std::uint64_t& task, std::size_t jobs) {
    std::vector<core::ExperimentConfig> configs;
    configs.reserve(static_cast<std::size_t>(trials));
    for (int t = 0; t < trials; ++t) {
        core::ExperimentConfig cfg;
        cfg.params.n = n;
        cfg.params.tp = sim::SimTime::seconds(121.0);
        cfg.params.tc = sim::SimTime::seconds(0.11);
        cfg.params.tr = sim::SimTime::seconds(0.3);
        cfg.params.start = core::StartCondition::Unsynchronized;
        cfg.params.seed = parallel::derive_seed(base_seed, task++);
        cfg.max_time = sim::SimTime::seconds(sim_seconds);
        cfg.backend = core::ExperimentBackend::FastKernel;
        configs.push_back(std::move(cfg));
    }

    const auto t0 = std::chrono::steady_clock::now();
    // batch pinned to 1: every trial runs the scalar kernel, so the memory
    // column reports one consistent state layout at every rung and --jobs
    // cannot change it (see the header comment).
    const auto results =
        parallel::SweepScheduler{{.jobs = jobs, .batch = 1}}.run_all(configs);
    const auto t1 = std::chrono::steady_clock::now();

    Rung rung;
    rung.n = n;
    rung.trials = trials;
    rung.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    std::uint64_t router_rounds = 0;
    for (const auto& r : results) {
        rung.rounds_closed += r.rounds_closed;
        rung.rounds_unsync += r.rounds_unsynchronized;
        rung.transmissions += r.total_transmissions;
        rung.kernel_state_bytes =
            std::max(rung.kernel_state_bytes, r.kernel_state_bytes);
        router_rounds += static_cast<std::uint64_t>(n) * r.rounds_closed;
    }
    if (rung.rounds_closed > 0) {
        rung.frac_unsync = static_cast<double>(rung.rounds_unsync) /
                           static_cast<double>(rung.rounds_closed);
    }
    if (router_rounds > 0) {
        rung.ns_per_router_round =
            rung.wall_ms * 1e6 / static_cast<double>(router_rounds);
    }
    rung.bytes_per_router =
        static_cast<double>(rung.kernel_state_bytes) / static_cast<double>(n);
    return rung;
}

} // namespace

int main(int argc, char** argv) {
    OptionsSpec spec;
    spec.extra = {"max-n", "sim-time", "trials", "bench-out"};
    spec.tool = "metroscale_sweep";
    spec.description = "fig15 phase transition in N pushed to metro scale "
                       "(N up to 1e5) on the packed-lane PM kernel; reports "
                       "frac unsync, ns/router-round, bytes/router, peak RSS";
    const Options& options = parse_options(argc, argv, spec);
    const int max_n = cli::flag_i(options.extra, "max-n", 100000);
    const double sim_seconds = cli::flag_d(options.extra, "sim-time", 20000.0);
    const int trials_small = cli::flag_i(options.extra, "trials", 3);
    const std::uint64_t base_seed = options.seed_or(1993);

    header("Metro-scale sweep",
           "fraction unsynchronized vs N at Tp=121 s, Tc=0.11 s, Tr=0.3 s, "
           "N up to 1e5 (fig15 pushed to metro scale)");

    const std::vector<int> ladder = {10,   15,   20,    25,    30,     50, 100,
                                     300,  1000, 3000,  10000, 30000, 100000};
    std::vector<Rung> rungs;
    std::uint64_t task = 0;
    section("series: N vs fraction unsynchronized (simulated)");
    std::printf("%7s %7s %10s %10s %12s %14s %14s\n", "N", "trials", "rounds",
                "frac", "wall_ms", "ns/rtr-round", "bytes/router");
    for (const int n : ladder) {
        if (n > max_n) {
            continue;
        }
        const int trials = n <= 1000 ? trials_small : 1;
        Rung rung = run_rung(n, trials, sim_seconds, base_seed, task,
                             options.jobs);
        std::printf("%7d %7d %10llu %10.4f %12.1f %14.1f %14.1f\n", rung.n,
                    rung.trials,
                    static_cast<unsigned long long>(rung.rounds_closed),
                    rung.frac_unsync, rung.wall_ms, rung.ns_per_router_round,
                    rung.bytes_per_router);
        rungs.push_back(rung);
    }
    if (rungs.empty()) {
        std::fprintf(stderr, "error: --max-n %d leaves no rungs to run\n", max_n);
        return 2;
    }

    const Rung& smallest = rungs.front();
    const Rung& largest = rungs.back();
    const std::uint64_t rss = obs::peak_rss_bytes();
    // Below metro scale the per-router figure is dominated by costs that
    // amortize away as N grows: the calendar's fixed headers (1024 bucket
    // vectors + bitmap, tens of KB) at small N, and the sub-threshold
    // bucket capacities retained through the collapse transition
    // (kPmBucketRetainEvents) at mid N — both bounded in absolute terms,
    // so the scaling claim is checked at the 1e4+ rungs it is made for.
    double max_bytes_per_router = 0.0;
    bool have_metro_rung = false;
    for (const Rung& r : rungs) {
        if (r.n >= 10000) {
            max_bytes_per_router =
                std::max(max_bytes_per_router, r.bytes_per_router);
            have_metro_rung = true;
        }
    }

    section("summary");
    std::printf("largest rung               : N = %d\n", largest.n);
    std::printf("frac unsync at N = %-6d  : %.4f\n", smallest.n,
                smallest.frac_unsync);
    std::printf("frac unsync at N = %-6d  : %.4f\n", largest.n,
                largest.frac_unsync);
    std::printf("ns/router-round at largest : %.1f\n",
                largest.ns_per_router_round);
    std::printf("bytes/router at largest    : %.1f\n", largest.bytes_per_router);
    std::printf("peak RSS                   : %.1f MiB\n",
                static_cast<double>(rss) / (1024.0 * 1024.0));

    check(largest.rounds_closed > 0 && largest.transmissions > 0,
          "the largest rung completes with closed rounds and transmissions");
    check(largest.ns_per_router_round > 0.0,
          "ns/router-round is measured at the largest rung");
    if (smallest.n <= 15) {
        check(smallest.frac_unsync > 0.5,
              "small N stays predominately unsynchronized (paper's left "
              "regime)");
    }
    if (largest.n >= 50) {
        check(largest.frac_unsync < 0.5,
              "past the critical N the network is predominately "
              "synchronized (paper's right regime, held at metro scale)");
    }
    if (have_metro_rung) {
        check(max_bytes_per_router <= 256.0,
              "kernel state stays within 256 bytes/router at every rung of "
              "at least 1e4 routers");
    }

    const std::string path =
        cli::flag_s(options.extra, "bench-out", "BENCH_sweep.json");
    std::ostringstream out;
    out << "{\n";
    out << "    \"params\": {\"tp_sec\": 121, \"tc_sec\": 0.11, \"tr_sec\": 0.3, "
           "\"sim_seconds\": "
        << sim_seconds << ", \"start\": \"unsynchronized\"},\n";
    out << "    \"jobs\": " << options.jobs << ",\n";
    out << "    \"rungs\": [\n";
    for (std::size_t i = 0; i < rungs.size(); ++i) {
        const Rung& r = rungs[i];
        out << "      {\"n\": " << r.n << ", \"trials\": " << r.trials
            << ", \"rounds_closed\": " << r.rounds_closed
            << ", \"frac_unsync\": " << r.frac_unsync
            << ", \"wall_ms\": " << r.wall_ms
            << ", \"ns_per_router_round\": " << r.ns_per_router_round
            << ", \"kernel_state_bytes\": " << r.kernel_state_bytes
            << ", \"bytes_per_router\": " << r.bytes_per_router
            << ", \"transmissions\": " << r.transmissions
            << (i + 1 < rungs.size() ? "},\n" : "}\n");
    }
    out << "    ],\n";
    out << "    \"max_bytes_per_router_metro\": " << max_bytes_per_router
        << ",\n";
    out << "    \"peak_rss_bytes\": " << rss << "\n";
    out << "  }";
    write_json_section(path, "metroscale", out.str());
    std::printf("wrote section \"metroscale\" of %s\n", path.c_str());

    opts().sim_seconds = sim_seconds;
    return footer();
}
