// Section 1 claim — "in the Xerox PARC internal network ... their cisco
// routers require roughly 300 ms to process a routing message (1 ms per
// route times 300 routes). From the results in Section 5, the routers
// would have to add at least a second of randomness to their update
// intervals to prevent synchronization."
//
// We size the randomness with the Markov model at Tc = 0.3 s and check
// that the answer is of order one second (and that mere tens of
// milliseconds are nowhere near enough).
#include <cstdio>

#include "bench/common.hpp"
#include "markov/markov.hpp"

using namespace routesync;
using namespace routesync::bench;

int main(int argc, char** argv) {
    parse_options(argc, argv);
    header("Section 1 claim",
           "sizing the randomness for the Xerox PARC ciscos (Tc = 0.3 s)");

    section("table: N vs required Tr (50% threshold) and the 10*Tc rule");
    std::printf("%5s %16s %16s\n", "N", "Tr*_seconds", "frac@Tr=1s");
    bool one_second_suffices = true;
    bool fifty_ms_fails = true;
    double tr_star_20 = 0.0;
    for (const int n : {10, 20, 30}) {
        markov::ChainParams p;
        p.n = n;
        p.tp_sec = 90.0; // IGRP-style period
        p.tc_sec = 0.3;
        p.tr_sec = 0.3;
        p.f2_rounds = markov::f2_diffusion_estimate(n, p.tp_sec, 0.3);
        const double tr_star = markov::critical_tr_seconds(p);
        markov::ChainParams at1 = p;
        at1.tr_sec = 1.0;
        at1.f2_rounds = markov::f2_diffusion_estimate(n, p.tp_sec, 1.0);
        const double frac1 = markov::FJChain{at1}.fraction_unsynchronized();
        std::printf("%5d %16.3f %16.4f\n", n, tr_star, frac1);
        if (n == 20) {
            tr_star_20 = tr_star;
        }
        if (frac1 < 0.9) {
            one_second_suffices = false;
        }
        markov::ChainParams at50ms = p;
        at50ms.tr_sec = 0.05;
        at50ms.f2_rounds = markov::f2_diffusion_estimate(n, p.tp_sec, 0.05);
        if (markov::FJChain{at50ms}.fraction_unsynchronized() > 0.1) {
            fifty_ms_fails = false;
        }
    }

    section("summary");
    std::printf("50%% threshold at N=20: Tr* = %.2f s (paper: 'at least a second')\n",
                tr_star_20);
    std::printf("quick-breakup rule of thumb (10 * Tc): %.1f s\n", 10 * 0.3);

    check(tr_star_20 > 0.3 && tr_star_20 < 3.0,
          "required randomness is of order one second, not milliseconds");
    check(one_second_suffices,
          "a full second of jitter keeps the network predominately "
          "unsynchronized for N up to 30");
    check(fifty_ms_fails,
          "OS-level noise (~50 ms) cannot prevent synchronization");

    return footer();
}
