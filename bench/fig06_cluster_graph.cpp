// Figure 6 — "The cluster graph, showing the largest cluster for each
// round": the Figure 4 run summarized as (round time, largest cluster).
#include <cstdio>

#include "bench/common.hpp"
#include "core/core.hpp"

using namespace routesync;
using namespace routesync::bench;

int main(int argc, char** argv) {
    parse_options(argc, argv);
    header("Figure 6", "largest cluster per round, Figure 4 parameters");

    core::ExperimentConfig cfg;
    cfg.params.n = 20;
    cfg.params.tp = sim::SimTime::seconds(121);
    cfg.params.tc = sim::SimTime::seconds(0.11);
    cfg.params.tr = sim::SimTime::seconds(0.1);
    cfg.params.seed = 42;
    cfg.max_time = sim::SimTime::seconds(1e5);
    cfg.record_rounds = true;
    const auto r = core::run_experiment(cfg);

    section("series: time (s) vs largest cluster in the round");
    std::printf("%10s %8s\n", "time_s", "largest");
    for (const auto& round : r.rounds) {
        std::printf("%10.0f %8d\n", round.end_time.sec(), round.largest);
    }

    section("summary");
    std::printf("rounds: %llu, final largest cluster: %d\n",
                static_cast<unsigned long long>(r.rounds_closed),
                r.rounds.empty() ? 0 : r.rounds.back().largest);

    // The paper's observation: growth is not gradual — small clusters form
    // and break for a long time, then one large cluster sweeps up the rest.
    std::uint64_t rounds_small = 0; // largest <= 5 of N = 20
    std::uint64_t rounds_before_sync = 0;
    bool synced = false;
    for (const auto& round : r.rounds) {
        if (round.largest == 20) {
            synced = true;
        }
        if (!synced) {
            ++rounds_before_sync;
            if (round.largest <= 5) {
                ++rounds_small;
            }
        }
    }
    check(!r.rounds.empty() && r.rounds.back().largest == 20,
          "the run ends fully synchronized (largest cluster = N)");
    check(rounds_before_sync > 0 &&
              rounds_small > rounds_before_sync / 2,
          "before the transition, most rounds hold only small clusters "
          "(no gradual 'clumping up')");

    return footer();
}
