// Figure 1 — "Periodic packet losses from synchronized IGRP routing
// messages": 1000 pings at 1.01 s intervals across core routers whose
// synchronized 90 s updates stall the forwarding plane. Dropped pings are
// plotted with negative RTT, exactly as in the paper.
//
// Also reproduces the paper's Section 2 postscript: with the (post-fix)
// non-blocking routers, the periodic losses disappear.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "scenarios/scenarios.hpp"

using namespace routesync;
using namespace routesync::bench;

namespace {

struct PingRun {
    std::vector<double> rtts;
    double loss_fraction;
    int lost;
};

PingRun run(bool blocking, obs::RunContext* ctx = nullptr) {
    scenarios::NearnetConfig cfg;
    cfg.blocking_cpu = blocking;
    scenarios::NearnetScenario s{cfg, ctx};
    if (ctx != nullptr && opts().sample_every > 0.0) {
        s.start_sampler(*ctx, opts().sample_every);
    }
    apps::PingConfig pc;
    pc.dst = s.dst().id();
    pc.count = 1000;
    apps::PingApp ping{s.src(), pc};
    ping.start(s.routing_start() + sim::SimTime::seconds(200));
    s.engine().run_until(sim::SimTime::seconds(1500));
    if (ctx != nullptr) {
        s.collect_metrics(*ctx);
    }
    return PingRun{ping.rtts(), ping.loss_fraction(), ping.lost()};
}

} // namespace

int main(int argc, char** argv) {
    Options& options = parse_options(
        argc, argv, "Figure 1: ping losses under synchronized updates");
    options.sim_seconds = 1500.0;
    header("Figure 1",
           "ping RTT series with ~90 s periodic losses from synchronized "
           "IGRP-style updates (blocking route processors)");

    const PingRun pre = run(/*blocking=*/true, &options.ctx);

    section("series: ping number vs RTT (s); negative = dropped — every 10th "
            "shown, plus every loss");
    std::printf("%6s %10s\n", "ping#", "rtt_s");
    for (std::size_t i = 0; i < pre.rtts.size(); ++i) {
        if (i % 10 == 0 || pre.rtts[i] < 0) {
            std::printf("%6zu %10.4f\n", i, pre.rtts[i]);
        }
    }

    section("summary");
    std::printf("pings sent      : %zu\n", pre.rtts.size());
    std::printf("pings lost      : %d\n", pre.lost);
    std::printf("loss fraction   : %.2f%%  (paper: 'at least three percent')\n",
                100.0 * pre.loss_fraction);

    // Loss run-length structure ("several successive pings dropped").
    // Losses within 10 pings of each other belong to one storm (inside a
    // storm the pending buffer occasionally slips a ping through).
    int max_run = 0;
    int current = 0;
    std::vector<std::size_t> run_starts;
    std::size_t last_loss = 0;
    bool any_loss = false;
    for (std::size_t i = 0; i < pre.rtts.size(); ++i) {
        if (pre.rtts[i] < 0) {
            if (!any_loss || i - last_loss > 10) {
                run_starts.push_back(i);
                current = 0;
            }
            any_loss = true;
            last_loss = i;
            ++current;
            max_run = std::max(max_run, current);
        }
    }
    std::printf("loss bursts     : %zu (longest run %d consecutive pings)\n",
                run_starts.size(), max_run);
    if (run_starts.size() >= 2) {
        double mean_gap = 0.0;
        for (std::size_t i = 1; i < run_starts.size(); ++i) {
            mean_gap += static_cast<double>(run_starts[i] - run_starts[i - 1]);
        }
        mean_gap /= static_cast<double>(run_starts.size() - 1);
        std::printf("burst spacing   : %.1f pings (~%.1f s; paper: ~90 s)\n",
                    mean_gap, mean_gap * 1.01);
        check(mean_gap > 80 && mean_gap < 100,
              "loss bursts recur every ~90 s (88-89 pings)");
    } else {
        check(false, "expected at least two loss bursts");
    }

    check(pre.loss_fraction >= 0.02, "loss fraction >= 2% (paper: >= 3%)");
    check(max_run >= 2, "losses come in runs of several successive pings");

    section("the NEARnet fix: non-blocking route processors");
    const PingRun post = run(/*blocking=*/false);
    std::printf("loss fraction with non-blocking CPUs: %.2f%%\n",
                100.0 * post.loss_fraction);
    check(post.lost == 0, "non-blocking routers eliminate the periodic losses");

    return footer();
}
