// Wall-clock bench for the packet-level scenario sweep: one TaskPool
// over a (buffer x load x trial) grid of shared-LAN simulations
// (scenarios/run_scenario_sweep), timed end to end at --jobs 1, 4, and
// 8. Every pass must agree on the transmissions checksum (summed
// frames_delivered) and on the combined FNV trace digest — the same
// byte-identity contract check-scenario-sweep enforces at the CLI, here
// applied to the wall-clock passes so a timing number can never come
// from a run that computed something different.
//
// Writes the "scenario_sweep" section of BENCH_sweep.json (or
// --bench-out PATH; bench/sweep_wallclock and bench/metroscale_sweep
// own the other sections of the same file).
//
// Extra flags:
//   --max-time SEC   simulated seconds per cell (default 300)
//   --trials T       trials per grid point (default 3)
//   --bench-out PATH report file (default BENCH_sweep.json)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "scenarios/scenario_sweep.hpp"

using namespace routesync;
using namespace routesync::bench;

namespace {

struct Pass {
    std::size_t jobs = 0;
    double wall_ms = 0.0;
    std::size_t steals = 0;
    std::uint64_t transmissions = 0; ///< summed frames_delivered
    std::uint64_t combined_digest = 0;
    std::size_t cells = 0;
};

Pass run_pass(const scenarios::ScenarioSweepConfig& base, std::size_t jobs) {
    scenarios::ScenarioSweepConfig cfg = base;
    cfg.jobs = jobs;
    const auto t0 = std::chrono::steady_clock::now();
    const scenarios::ScenarioSweepResult sweep =
        scenarios::run_scenario_sweep(cfg);
    const auto t1 = std::chrono::steady_clock::now();

    Pass pass;
    pass.jobs = jobs;
    pass.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    pass.steals = sweep.steals;
    pass.combined_digest = sweep.combined_digest;
    pass.cells = sweep.cells.size();
    for (const scenarios::ScenarioSweepCell& cell : sweep.cells) {
        pass.transmissions += cell.result.frames_delivered;
    }
    return pass;
}

} // namespace

int main(int argc, char** argv) {
    OptionsSpec spec;
    spec.extra = {"max-time", "trials", "bench-out"};
    spec.tool = "scenario_sweep_wallclock";
    spec.description = "packet-level shared-LAN scenario sweep (buffer x "
                       "load x trial grid) timed at --jobs 1/4/8; every "
                       "pass must agree on transmissions and trace digest";
    const Options& options = parse_options(argc, argv, spec);
    const double max_time = cli::flag_d(options.extra, "max-time", 300.0);
    const int trials = cli::flag_trials(options.extra, 3);

    scenarios::ScenarioSweepConfig sweep_cfg;
    sweep_cfg.base.queue_disc = net::elements::QueueDisc::Red;
    sweep_cfg.base.max_time = sim::SimTime::seconds(max_time);
    sweep_cfg.base.seed = options.seed_or(1993);
    sweep_cfg.buffers = {4, 8, 16, 32};
    sweep_cfg.loads = {0.8, 1.2};
    sweep_cfg.trials = trials;
    const std::size_t cells =
        sweep_cfg.buffers.size() * sweep_cfg.loads.size() *
        static_cast<std::size_t>(trials);

    header("Scenario sweep wall clock",
           "RED shared-LAN buffer x load grid through the packet-level "
           "sweep runner at 1/4/8 workers");

    section("grid");
    std::printf("buffers: 4, 8, 16, 32   loads: 0.8, 1.2   trials: %d\n",
                trials);
    std::printf("cells: %zu x %.0f simulated seconds each\n", cells, max_time);

    const std::vector<std::size_t> jobs_ladder = {1, 4, 8};
    std::vector<Pass> passes;
    section("passes");
    std::printf("%6s %12s %8s %15s %18s\n", "jobs", "wall_ms", "steals",
                "transmissions", "combined_digest");
    for (const std::size_t jobs : jobs_ladder) {
        Pass pass = run_pass(sweep_cfg, jobs);
        std::printf("%6zu %12.1f %8zu %15llu 0x%016llx\n", pass.jobs,
                    pass.wall_ms, pass.steals,
                    static_cast<unsigned long long>(pass.transmissions),
                    static_cast<unsigned long long>(pass.combined_digest));
        passes.push_back(pass);
    }

    const Pass& reference = passes.front();
    bool checksums_agree = true;
    bool digests_agree = true;
    for (const Pass& pass : passes) {
        checksums_agree &= pass.transmissions == reference.transmissions;
        digests_agree &= pass.combined_digest == reference.combined_digest;
    }
    check(reference.cells == cells && reference.transmissions > 0,
          "every grid cell completed and delivered frames");
    check(checksums_agree,
          "transmissions checksum is identical across --jobs 1/4/8");
    check(digests_agree,
          "combined trace digest is identical across --jobs 1/4/8");

    const std::string path =
        cli::flag_s(options.extra, "bench-out", "BENCH_sweep.json");
    std::ostringstream out;
    out << "{\n";
    out << "    \"grid\": {\"buffers\": [4, 8, 16, 32], \"loads\": [0.8, 1.2], "
           "\"trials\": "
        << trials << ", \"cells\": " << cells
        << ", \"sim_seconds_per_cell\": " << max_time
        << ", \"queue\": \"red\"},\n";
    out << "    \"hardware_concurrency\": " << parallel::hardware_jobs()
        << ",\n";
    out << "    \"passes\": [\n";
    for (std::size_t i = 0; i < passes.size(); ++i) {
        const Pass& p = passes[i];
        out << "      {\"jobs\": " << p.jobs << ", \"wall_ms\": " << p.wall_ms
            << ", \"steals\": " << p.steals
            << ", \"transmissions\": " << p.transmissions
            << (i + 1 < passes.size() ? "},\n" : "}\n");
    }
    out << "    ],\n";
    out << "    \"scaling_jobs_1_to_4\": "
        << reference.wall_ms / passes[1].wall_ms << ",\n";
    out << "    \"scaling_jobs_1_to_8\": "
        << reference.wall_ms / passes[2].wall_ms << ",\n";
    char digest_hex[32];
    std::snprintf(digest_hex, sizeof digest_hex, "0x%016llx",
                  static_cast<unsigned long long>(reference.combined_digest));
    out << "    \"combined_digest\": \"" << digest_hex << "\"\n";
    out << "  }";
    write_json_section(path, "scenario_sweep", out.str());
    std::printf("wrote section \"scenario_sweep\" of %s\n", path.c_str());

    opts().sim_seconds = max_time * static_cast<double>(cells);
    return footer();
}
