// Figure 12 — "Expected time to go from cluster size 1 to cluster size N,
// and vice versa, as a function of Tr": the solid line is g(1) (time to
// unsynchronize), the dashed line f(N) with the calibrated f(2), and the
// dotted line f(N) with f(2) = 0. 'x' marks are simulations from an
// unsynchronized start, '+' marks from a synchronized start. Log-scale y;
// the low / moderate / high randomization regions.
#include <cstdio>

#include "bench/common.hpp"
#include "core/core.hpp"
#include "markov/markov.hpp"

using namespace routesync;
using namespace routesync::bench;

namespace {

double simulate_sync_time(double tr, std::uint64_t seed) {
    core::ExperimentConfig cfg;
    cfg.params.n = 20;
    cfg.params.tp = sim::SimTime::seconds(121);
    cfg.params.tc = sim::SimTime::seconds(0.11);
    cfg.params.tr = sim::SimTime::seconds(tr);
    cfg.params.seed = seed;
    cfg.max_time = sim::SimTime::seconds(1e7);
    cfg.stop_on_full_sync = true;
    const auto r = core::run_experiment(cfg);
    return r.full_sync_time_sec.value_or(1e7);
}

double simulate_breakup_time(double tr, std::uint64_t seed) {
    core::ExperimentConfig cfg;
    cfg.params.n = 20;
    cfg.params.tp = sim::SimTime::seconds(121);
    cfg.params.tc = sim::SimTime::seconds(0.11);
    cfg.params.tr = sim::SimTime::seconds(tr);
    cfg.params.start = core::StartCondition::Synchronized;
    cfg.params.seed = seed;
    cfg.max_time = sim::SimTime::seconds(1e7);
    cfg.stop_on_breakup_threshold = 1;
    const auto r = core::run_experiment(cfg);
    return r.breakup_time_sec.value_or(1e7);
}

} // namespace

int main() {
    header("Figure 12",
           "f(N) and g(1) in seconds vs Tr (N=20, Tp=121 s, Tc=0.11 s); "
           "f(2) from the diffusion estimate, plus the f(2)=0 variant");

    const double tc = 0.11;
    section("series: Tr/Tc vs g(1)_s (solid), f(N)_s (dashed), f(N)|f2=0 (dotted)");
    std::printf("%7s %16s %16s %16s\n", "Tr/Tc", "g1_s", "fN_s", "fN_f2zero_s");
    double crossover = -1.0;
    double prev_diff = 0.0;
    for (double factor = 0.1; factor <= 4.51; factor += 0.1) {
        const double tr = factor * tc;
        markov::ChainParams p;
        p.n = 20;
        p.tp_sec = 121.0;
        p.tc_sec = tc;
        p.tr_sec = tr;
        p.f2_rounds = markov::f2_diffusion_estimate(p.n, p.tp_sec, tr);
        const markov::FJChain chain{p};
        markov::ChainParams p0 = p;
        p0.f2_rounds = 0.0;
        const markov::FJChain chain0{p0};

        const double g1 = chain.time_to_break_up_seconds();
        const double fn = chain.time_to_synchronize_seconds();
        const double fn0 = chain0.time_to_synchronize_seconds();
        std::printf("%7.2f %16s %16s %16s\n", factor, fmt_time(g1).c_str(),
                    fmt_time(fn).c_str(), fmt_time(fn0).c_str());

        const double diff = (std::isinf(fn) ? 1e18 : fn) - (std::isinf(g1) ? 1e18 : g1);
        if (crossover < 0 && prev_diff < 0 && diff >= 0) {
            crossover = factor;
        }
        prev_diff = diff;
    }
    std::printf("f(N)/g(1) crossover near Tr = %.2f * Tc (the 'moderate' region)\n",
                crossover);

    section("simulation marks ('x' = unsync start, '+' = sync start)");
    for (const double factor : {0.6, 1.0}) {
        const double t = simulate_sync_time(factor * tc, 11);
        std::printf("x  Tr=%.2f*Tc  time_to_sync  = %.4g s\n", factor, t);
    }
    for (const double factor : {2.5, 2.8}) {
        const double t = simulate_breakup_time(factor * tc, 13);
        std::printf("+  Tr=%.2f*Tc  time_to_break = %.4g s\n", factor, t);
    }

    // Shape checks: f grows with Tr, g falls with Tr, and the curves cross.
    auto fn_at = [&](double factor) {
        markov::ChainParams p;
        p.n = 20;
        p.tp_sec = 121.0;
        p.tc_sec = tc;
        p.tr_sec = factor * tc;
        p.f2_rounds = markov::f2_diffusion_estimate(p.n, p.tp_sec, p.tr_sec);
        return markov::FJChain{p}.time_to_synchronize_seconds();
    };
    auto g1_at = [&](double factor) {
        markov::ChainParams p;
        p.n = 20;
        p.tp_sec = 121.0;
        p.tc_sec = tc;
        p.tr_sec = factor * tc;
        p.f2_rounds = 19.0;
        return markov::FJChain{p}.time_to_break_up_seconds();
    };
    check(fn_at(0.6) < fn_at(1.0) && fn_at(1.0) < fn_at(1.8),
          "f(N) grows (exponentially) with Tr in the low/moderate region");
    check(g1_at(1.0) > g1_at(2.0) && g1_at(2.0) > g1_at(4.0),
          "g(1) falls with Tr");
    check(crossover > 0.5 && crossover < 4.0,
          "the moderate region (curve crossover) lies inside the plot");
    check(fn_at(0.6) < 1e5 && g1_at(0.6) > 1e9,
          "low randomization: quick to synchronize, ~never unsynchronizes");
    check(g1_at(4.0) < 1e5, "high randomization: clusters dissolve quickly");

    return footer();
}
