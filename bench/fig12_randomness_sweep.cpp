// Figure 12 — "Expected time to go from cluster size 1 to cluster size N,
// and vice versa, as a function of Tr": the solid line is g(1) (time to
// unsynchronize), the dashed line f(N) with the calibrated f(2), and the
// dotted line f(N) with f(2) = 0. 'x' marks are simulations from an
// unsynchronized start, '+' marks from a synchronized start. Log-scale y;
// the low / moderate / high randomization regions.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/core.hpp"
#include "markov/markov.hpp"
#include "parallel/parallel.hpp"

using namespace routesync;
using namespace routesync::bench;

namespace {

core::ExperimentConfig sync_time_config(double tr, std::uint64_t seed) {
    core::ExperimentConfig cfg;
    cfg.params.n = 20;
    cfg.params.tp = sim::SimTime::seconds(121);
    cfg.params.tc = sim::SimTime::seconds(0.11);
    cfg.params.tr = sim::SimTime::seconds(tr);
    cfg.params.seed = seed;
    cfg.max_time = sim::SimTime::seconds(1e7);
    cfg.stop_on_full_sync = true;
    return cfg;
}

core::ExperimentConfig breakup_time_config(double tr, std::uint64_t seed) {
    core::ExperimentConfig cfg;
    cfg.params.n = 20;
    cfg.params.tp = sim::SimTime::seconds(121);
    cfg.params.tc = sim::SimTime::seconds(0.11);
    cfg.params.tr = sim::SimTime::seconds(tr);
    cfg.params.start = core::StartCondition::Synchronized;
    cfg.params.seed = seed;
    cfg.max_time = sim::SimTime::seconds(1e7);
    cfg.stop_on_breakup_threshold = 1;
    return cfg;
}

} // namespace

int main(int argc, char** argv) {
    const Options& options = parse_options(argc, argv);
    const std::size_t jobs = options.jobs;
    header("Figure 12",
           "f(N) and g(1) in seconds vs Tr (N=20, Tp=121 s, Tc=0.11 s); "
           "f(2) from the diffusion estimate, plus the f(2)=0 variant");

    const double tc = 0.11;
    section("series: Tr/Tc vs g(1)_s (solid), f(N)_s (dashed), f(N)|f2=0 (dotted)");
    std::printf("%7s %16s %16s %16s\n", "Tr/Tc", "g1_s", "fN_s", "fN_f2zero_s");
    // Materialize the grid with the same accumulation the serial loop
    // used (so the factor doubles are bit-identical), evaluate the chain
    // at every point in parallel, then print/scan serially.
    std::vector<double> grid;
    for (double factor = 0.1; factor <= 4.51; factor += 0.1) {
        grid.push_back(factor);
    }
    struct Row {
        double g1, fn, fn0;
    };
    const auto rows = parallel::map_index<Row>(grid.size(), jobs, [&](std::size_t i) {
        const double tr = grid[i] * tc;
        markov::ChainParams p;
        p.n = 20;
        p.tp_sec = 121.0;
        p.tc_sec = tc;
        p.tr_sec = tr;
        p.f2_rounds = markov::f2_diffusion_estimate(p.n, p.tp_sec, tr);
        const markov::FJChain chain{p};
        markov::ChainParams p0 = p;
        p0.f2_rounds = 0.0;
        const markov::FJChain chain0{p0};
        return Row{chain.time_to_break_up_seconds(),
                   chain.time_to_synchronize_seconds(),
                   chain0.time_to_synchronize_seconds()};
    });
    double crossover = -1.0;
    double prev_diff = 0.0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const auto& [g1, fn, fn0] = rows[i];
        std::printf("%7.2f %16s %16s %16s\n", grid[i], fmt_time(g1).c_str(),
                    fmt_time(fn).c_str(), fmt_time(fn0).c_str());

        const double diff = (std::isinf(fn) ? 1e18 : fn) - (std::isinf(g1) ? 1e18 : g1);
        if (crossover < 0 && prev_diff < 0 && diff >= 0) {
            crossover = grid[i];
        }
        prev_diff = diff;
    }
    std::printf("f(N)/g(1) crossover near Tr = %.2f * Tc (the 'moderate' region)\n",
                crossover);

    section("simulation marks ('x' = unsync start, '+' = sync start)");
    const std::vector<core::ExperimentConfig> mark_configs{
        sync_time_config(0.6 * tc, 11), sync_time_config(1.0 * tc, 11),
        breakup_time_config(2.5 * tc, 13), breakup_time_config(2.8 * tc, 13)};
    const auto marks =
        parallel::SweepScheduler{{.jobs = jobs, .batch = options.batch}}.run_all(mark_configs);
    parallel::merge_sweep_into(opts().ctx, marks);
    std::printf("x  Tr=%.2f*Tc  time_to_sync  = %.4g s\n", 0.6,
                marks[0].full_sync_time_sec.value_or(1e7));
    std::printf("x  Tr=%.2f*Tc  time_to_sync  = %.4g s\n", 1.0,
                marks[1].full_sync_time_sec.value_or(1e7));
    std::printf("+  Tr=%.2f*Tc  time_to_break = %.4g s\n", 2.5,
                marks[2].breakup_time_sec.value_or(1e7));
    std::printf("+  Tr=%.2f*Tc  time_to_break = %.4g s\n", 2.8,
                marks[3].breakup_time_sec.value_or(1e7));

    // Shape checks: f grows with Tr, g falls with Tr, and the curves cross.
    auto fn_at = [&](double factor) {
        markov::ChainParams p;
        p.n = 20;
        p.tp_sec = 121.0;
        p.tc_sec = tc;
        p.tr_sec = factor * tc;
        p.f2_rounds = markov::f2_diffusion_estimate(p.n, p.tp_sec, p.tr_sec);
        return markov::FJChain{p}.time_to_synchronize_seconds();
    };
    auto g1_at = [&](double factor) {
        markov::ChainParams p;
        p.n = 20;
        p.tp_sec = 121.0;
        p.tc_sec = tc;
        p.tr_sec = factor * tc;
        p.f2_rounds = 19.0;
        return markov::FJChain{p}.time_to_break_up_seconds();
    };
    check(fn_at(0.6) < fn_at(1.0) && fn_at(1.0) < fn_at(1.8),
          "f(N) grows (exponentially) with Tr in the low/moderate region");
    check(g1_at(1.0) > g1_at(2.0) && g1_at(2.0) > g1_at(4.0),
          "g(1) falls with Tr");
    check(crossover > 0.5 && crossover < 4.0,
          "the moderate region (curve crossover) lies inside the plot");
    check(fn_at(0.6) < 1e5 && g1_at(0.6) > 1e9,
          "low randomization: quick to synchronize, ~never unsynchronizes");
    check(g1_at(4.0) < 1e5, "high randomization: clusters dissolve quickly");

    return footer();
}
