// Wall-clock benchmark for the PM fast-path kernel + work-stealing sweep
// scheduler: the Figure 13 N x Tc simulation grid (N in {10, 20, 30},
// Tc in {0.01, 0.11} s, Tr/Tc from 0.6 to 8.0 in steps of 0.4), every
// (grid point x trial) task pooled into one SweepScheduler run.
//
// Four timed passes over the identical grid:
//   engine  --jobs 1   generic DES engine + PeriodicMessagesModel
//   kernel  --jobs 1   fused PM kernel (the tentpole speedup)
//   kernel  --jobs 4   kernel + work stealing
//   kernel  --jobs 8   kernel + work stealing
//
// Writes BENCH_sweep.json (or --out PATH): per-pass wall milliseconds,
// kernel-vs-engine speedup at one thread, 1->4 / 1->8 scaling, and the
// hardware_concurrency of the machine that produced the numbers — thread
// scaling is only meaningful with that context (a 1-core container shows
// ~1.0x regardless of the scheduler).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/core.hpp"
#include "parallel/parallel.hpp"

using namespace routesync;
using namespace routesync::bench;

namespace {

std::vector<core::ExperimentConfig> make_grid(core::ExperimentBackend backend) {
    std::vector<core::ExperimentConfig> configs;
    std::size_t task = 0;
    for (const int n : {10, 20, 30}) {
        for (const double tc : {0.01, 0.11}) {
            for (double factor = 0.6; factor <= 8.01; factor += 0.4) {
                core::ExperimentConfig cfg;
                cfg.params.n = n;
                cfg.params.tp = sim::SimTime::seconds(121);
                cfg.params.tc = sim::SimTime::seconds(tc);
                cfg.params.tr = sim::SimTime::seconds(factor * tc);
                cfg.params.seed = parallel::derive_seed(42, task++);
                cfg.max_time = sim::SimTime::seconds(5000);
                cfg.backend = backend;
                configs.push_back(cfg);
            }
        }
    }
    return configs;
}

struct Pass {
    std::string name;
    double wall_ms = 0.0;
    std::uint64_t transmissions = 0; ///< checksum: must agree across passes
};

Pass time_pass(const std::string& name, core::ExperimentBackend backend,
               std::size_t jobs) {
    const auto configs = make_grid(backend);
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = parallel::SweepScheduler{{.jobs = jobs}}.run_all(configs);
    const auto t1 = std::chrono::steady_clock::now();
    Pass pass;
    pass.name = name;
    pass.wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    for (const auto& r : results) {
        pass.transmissions += r.total_transmissions;
    }
    return pass;
}

} // namespace

int main(int argc, char** argv) {
    OptionsSpec spec;
    spec.tool = "sweep_wallclock";
    spec.description = "fig13 N x Tc simulation grid wall clock: engine vs "
                       "PM kernel, SweepScheduler at 1/4/8 jobs";
    const Options& options = parse_options(argc, argv, spec);
    header("Sweep wall clock",
           "fig13 N x Tc grid (114 sims, 5000 s each) — engine vs kernel, "
           "jobs scaling");

    std::vector<Pass> passes;
    passes.push_back(time_pass("engine_jobs1", core::ExperimentBackend::Engine, 1));
    passes.push_back(
        time_pass("kernel_jobs1", core::ExperimentBackend::FastKernel, 1));
    passes.push_back(
        time_pass("kernel_jobs4", core::ExperimentBackend::FastKernel, 4));
    passes.push_back(
        time_pass("kernel_jobs8", core::ExperimentBackend::FastKernel, 8));

    section("wall clock");
    std::printf("%14s %12s %16s\n", "pass", "wall_ms", "transmissions");
    for (const Pass& p : passes) {
        std::printf("%14s %12.1f %16llu\n", p.name.c_str(), p.wall_ms,
                    static_cast<unsigned long long>(p.transmissions));
    }

    const double speedup_kernel = passes[0].wall_ms / passes[1].wall_ms;
    const double scale_4 = passes[1].wall_ms / passes[2].wall_ms;
    const double scale_8 = passes[1].wall_ms / passes[3].wall_ms;
    const unsigned hw = std::thread::hardware_concurrency();
    section("summary");
    std::printf("kernel vs engine (jobs 1): %.2fx\n", speedup_kernel);
    std::printf("kernel scaling 1 -> 4    : %.2fx\n", scale_4);
    std::printf("kernel scaling 1 -> 8    : %.2fx\n", scale_8);
    std::printf("hardware_concurrency     : %u\n", hw);

    check(passes[1].transmissions == passes[0].transmissions,
          "kernel pass reproduces the engine pass transmission-for-"
          "transmission");
    check(passes[2].transmissions == passes[1].transmissions &&
              passes[3].transmissions == passes[1].transmissions,
          "jobs 4/8 passes byte-identical to jobs 1 (deterministic "
          "scheduler)");
    check(speedup_kernel > 1.0, "the fast-path kernel beats the engine");

    const std::string path = options.out.empty() ? "BENCH_sweep.json" : options.out;
    std::ofstream out{path};
    out << "{\n";
    out << "  \"bench\": \"sweep_wallclock\",\n";
    out << "  \"grid\": {\"n\": [10, 20, 30], \"tc_sec\": [0.01, 0.11], "
           "\"tr_over_tc\": \"0.6..8.0 step 0.4\", \"sim_seconds\": 5000, "
           "\"tasks\": 114},\n";
    out << "  \"hardware_concurrency\": " << hw << ",\n";
    out << "  \"passes\": [\n";
    for (std::size_t i = 0; i < passes.size(); ++i) {
        out << "    {\"name\": \"" << passes[i].name << "\", \"wall_ms\": "
            << passes[i].wall_ms << ", \"transmissions\": "
            << passes[i].transmissions << (i + 1 < passes.size() ? "},\n" : "}\n");
    }
    out << "  ],\n";
    out << "  \"speedup_kernel_vs_engine_jobs1\": " << speedup_kernel << ",\n";
    out << "  \"scaling_jobs_1_to_4\": " << scale_4 << ",\n";
    out << "  \"scaling_jobs_1_to_8\": " << scale_8 << "\n";
    out << "}\n";
    std::printf("wrote %s\n", path.c_str());

    return footer();
}
