// Wall-clock benchmark for the PM fast-path kernel + work-stealing sweep
// scheduler: the Figure 13 N x Tc simulation grid (N in {10, 20, 30},
// Tc in {0.01, 0.11} s, Tr/Tc from 0.6 to 8.0 in steps of 0.4), every
// (grid point x trial) task pooled into one SweepScheduler run.
//
// Seven timed passes over the identical grid (each best-of-3 to shed
// scheduler noise):
//   engine   --jobs 1            generic DES engine + PeriodicMessagesModel
//   kernel   --jobs 1 --batch 1  fused PM kernel, one trial at a time
//   kernel   --jobs 4 --batch 1  scalar kernel + work stealing
//   kernel   --jobs 8 --batch 1  scalar kernel + work stealing
//   batched  --jobs 1            PmKernelBatch, auto batch size (SoA lanes)
//   batched  --jobs 4            batched lanes + work stealing
//   batched  --jobs 8            batched lanes + work stealing
//
// Then the end-to-end figure reproduction suite: the fig07..fig15
// binaries (built next to this one) each run once with their default
// arguments, output discarded, total wall time recorded — the number a
// user actually waits for when regenerating the paper's figures.
//
// Writes the "sweep_wallclock" section of BENCH_sweep.json (or
// --bench-out PATH; bench/metroscale_sweep owns the "metroscale" section
// of the same file): per-pass wall milliseconds, kernel-vs-engine and
// batched-vs-scalar speedups at one thread, 1->4 / 1->8 scaling,
// per-figure suite times, peak RSS, a representative N = 30 kernel
// state footprint in bytes/router, and the hardware_concurrency of the
// machine that produced the numbers — thread scaling is only meaningful
// with that context (a 1-core container shows ~1.0x regardless of the
// scheduler).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/manifest.hpp"

#include "bench/common.hpp"
#include "core/core.hpp"
#include "parallel/parallel.hpp"

using namespace routesync;
using namespace routesync::bench;

namespace {

std::vector<core::ExperimentConfig> make_grid(core::ExperimentBackend backend) {
    std::vector<core::ExperimentConfig> configs;
    std::size_t task = 0;
    for (const int n : {10, 20, 30}) {
        for (const double tc : {0.01, 0.11}) {
            for (double factor = 0.6; factor <= 8.01; factor += 0.4) {
                core::ExperimentConfig cfg;
                cfg.params.n = n;
                cfg.params.tp = sim::SimTime::seconds(121);
                cfg.params.tc = sim::SimTime::seconds(tc);
                cfg.params.tr = sim::SimTime::seconds(factor * tc);
                cfg.params.seed = parallel::derive_seed(42, task++);
                cfg.max_time = sim::SimTime::seconds(5000);
                cfg.backend = backend;
                configs.push_back(cfg);
            }
        }
    }
    return configs;
}

struct Pass {
    std::string name;
    double wall_ms = 0.0;
    std::uint64_t transmissions = 0; ///< checksum: must agree across passes
};

/// Best-of-3: each pass runs three times and reports the fastest. A
/// single ~10 ms run is at the mercy of scheduler preemption — one
/// timer tick landing inside the window skews a pass by 10-20% — and
/// the minimum is the standard estimator for "what the code costs when
/// the OS stays out of the way". The runs are deterministic, so the
/// transmission checksum is taken from the first (all three agree).
Pass time_pass(const std::string& name, core::ExperimentBackend backend,
               std::size_t jobs, std::size_t batch) {
    constexpr int kReps = 3;
    const auto configs = make_grid(backend);
    Pass pass;
    pass.name = name;
    for (int rep = 0; rep < kReps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto results =
            parallel::SweepScheduler{{.jobs = jobs, .batch = batch}}.run_all(
                configs);
        const auto t1 = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (rep == 0 || ms < pass.wall_ms) {
            pass.wall_ms = ms;
        }
        if (rep == 0) {
            for (const auto& r : results) {
                pass.transmissions += r.total_transmissions;
            }
        }
    }
    return pass;
}

struct FigureRun {
    std::string name;
    double wall_ms = 0.0;
    bool ok = false;
};

/// Times one figure binary end to end (default arguments, stdout/stderr
/// discarded). The binaries live next to this one, so resolve them
/// relative to argv[0].
FigureRun time_figure(const std::string& bin_dir, const std::string& name) {
    FigureRun run;
    run.name = name;
    const std::string cmd = bin_dir + "/" + name + " > /dev/null 2>&1";
    const auto t0 = std::chrono::steady_clock::now();
    const int rc = std::system(cmd.c_str());
    const auto t1 = std::chrono::steady_clock::now();
    run.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    run.ok = rc == 0;
    return run;
}

} // namespace

int main(int argc, char** argv) {
    OptionsSpec spec;
    spec.extra = {"bench-out"};
    spec.tool = "sweep_wallclock";
    spec.description = "fig13 N x Tc simulation grid wall clock: engine vs "
                       "scalar vs batched PM kernel, SweepScheduler at "
                       "1/4/8 jobs, plus the fig07..fig15 suite";
    const Options& options = parse_options(argc, argv, spec);
    header("Sweep wall clock",
           "fig13 N x Tc grid (114 sims, 5000 s each) — engine vs kernel "
           "vs batched lanes, jobs scaling, figure-suite total");

    std::vector<Pass> passes;
    passes.push_back(
        time_pass("engine_jobs1", core::ExperimentBackend::Engine, 1, 1));
    passes.push_back(
        time_pass("kernel_jobs1", core::ExperimentBackend::FastKernel, 1, 1));
    passes.push_back(
        time_pass("kernel_jobs4", core::ExperimentBackend::FastKernel, 4, 1));
    passes.push_back(
        time_pass("kernel_jobs8", core::ExperimentBackend::FastKernel, 8, 1));
    passes.push_back(
        time_pass("batched_jobs1", core::ExperimentBackend::FastKernel, 1, 0));
    passes.push_back(
        time_pass("batched_jobs4", core::ExperimentBackend::FastKernel, 4, 0));
    passes.push_back(
        time_pass("batched_jobs8", core::ExperimentBackend::FastKernel, 8, 0));

    section("wall clock");
    std::printf("%14s %12s %16s\n", "pass", "wall_ms", "transmissions");
    for (const Pass& p : passes) {
        std::printf("%14s %12.1f %16llu\n", p.name.c_str(), p.wall_ms,
                    static_cast<unsigned long long>(p.transmissions));
    }

    const double speedup_kernel = passes[0].wall_ms / passes[1].wall_ms;
    const double speedup_batched = passes[1].wall_ms / passes[4].wall_ms;
    const double scale_4 = passes[1].wall_ms / passes[2].wall_ms;
    const double scale_8 = passes[1].wall_ms / passes[3].wall_ms;
    const double batched_scale_4 = passes[4].wall_ms / passes[5].wall_ms;
    const double batched_scale_8 = passes[4].wall_ms / passes[6].wall_ms;
    const unsigned hw = std::thread::hardware_concurrency();
    section("summary");
    std::printf("kernel vs engine   (jobs 1): %.2fx\n", speedup_kernel);
    std::printf("batched vs scalar  (jobs 1): %.2fx\n", speedup_batched);
    std::printf("kernel scaling  1 -> 4     : %.2fx\n", scale_4);
    std::printf("kernel scaling  1 -> 8     : %.2fx\n", scale_8);
    std::printf("batched scaling 1 -> 4     : %.2fx\n", batched_scale_4);
    std::printf("batched scaling 1 -> 8     : %.2fx\n", batched_scale_8);
    std::printf("hardware_concurrency       : %u\n", hw);

    check(passes[1].transmissions == passes[0].transmissions,
          "kernel pass reproduces the engine pass transmission-for-"
          "transmission");
    check(passes[2].transmissions == passes[1].transmissions &&
              passes[3].transmissions == passes[1].transmissions,
          "jobs 4/8 passes byte-identical to jobs 1 (deterministic "
          "scheduler)");
    check(passes[4].transmissions == passes[1].transmissions &&
              passes[5].transmissions == passes[1].transmissions &&
              passes[6].transmissions == passes[1].transmissions,
          "batched passes reproduce the scalar pass transmission-for-"
          "transmission (lane bit-identity)");
    check(speedup_kernel > 1.0, "the fast-path kernel beats the engine");
    check(speedup_batched >= 2.0,
          "batched lanes at least double scalar single-thread throughput");

    // End-to-end figure reproduction: every simulation-bearing figure
    // binary at its defaults. This is the wall time a user pays for the
    // full fig07..fig15 regeneration (fig09 is chain-only and cheap, but
    // it is part of the suite, so it is timed too).
    const std::string self{argv[0]};
    const auto slash = self.find_last_of('/');
    const std::string bin_dir =
        slash == std::string::npos ? std::string{"."} : self.substr(0, slash);
    const std::vector<std::string> figure_bins = {
        "fig07_unsync_start_sweep", "fig08_sync_start_sweep",
        "fig09_markov_chain",       "fig10_time_to_cluster",
        "fig11_time_to_breakup",    "fig12_randomness_sweep",
        "fig13_n_tc_sweep",         "fig14_fraction_unsync",
        "fig15_phase_transition",
    };
    section("figure suite (defaults, output discarded)");
    std::vector<FigureRun> figures;
    double suite_ms = 0.0;
    bool suite_ok = true;
    for (const std::string& name : figure_bins) {
        FigureRun run = time_figure(bin_dir, name);
        std::printf("%26s %12.1f ms%s\n", run.name.c_str(), run.wall_ms,
                    run.ok ? "" : "  (FAILED)");
        suite_ms += run.wall_ms;
        suite_ok = suite_ok && run.ok;
        figures.push_back(std::move(run));
    }
    std::printf("%26s %12.1f ms\n", "total", suite_ms);
    check(suite_ok, "every figure binary in the suite exits 0");

    // Representative per-router state footprint: one N = 30 grid point on
    // the scalar kernel (the largest N the fig13 grid reaches). The
    // metroscale section carries the same number up to N = 1e5.
    std::uint64_t n30_state_bytes = 0;
    {
        auto cfgs = make_grid(core::ExperimentBackend::FastKernel);
        for (auto& cfg : cfgs) {
            if (cfg.params.n == 30) {
                n30_state_bytes = core::run_experiment(cfg).kernel_state_bytes;
                break;
            }
        }
    }
    const std::uint64_t rss = obs::peak_rss_bytes();
    section("memory");
    std::printf("kernel state, N = 30       : %llu B (%.1f B/router)\n",
                static_cast<unsigned long long>(n30_state_bytes),
                static_cast<double>(n30_state_bytes) / 30.0);
    std::printf("peak RSS                   : %.1f MiB\n",
                static_cast<double>(rss) / (1024.0 * 1024.0));

    const std::string path =
        cli::flag_s(options.extra, "bench-out", "BENCH_sweep.json");
    std::ostringstream out;
    out << "{\n";
    out << "    \"grid\": {\"n\": [10, 20, 30], \"tc_sec\": [0.01, 0.11], "
           "\"tr_over_tc\": \"0.6..8.0 step 0.4\", \"sim_seconds\": 5000, "
           "\"tasks\": 114},\n";
    out << "    \"hardware_concurrency\": " << hw << ",\n";
    out << "    \"passes\": [\n";
    for (std::size_t i = 0; i < passes.size(); ++i) {
        out << "      {\"name\": \"" << passes[i].name << "\", \"wall_ms\": "
            << passes[i].wall_ms << ", \"transmissions\": "
            << passes[i].transmissions << (i + 1 < passes.size() ? "},\n" : "}\n");
    }
    out << "    ],\n";
    out << "    \"speedup_kernel_vs_engine_jobs1\": " << speedup_kernel << ",\n";
    out << "    \"speedup_batched_vs_scalar_jobs1\": " << speedup_batched
        << ",\n";
    out << "    \"scaling_jobs_1_to_4\": " << scale_4 << ",\n";
    out << "    \"scaling_jobs_1_to_8\": " << scale_8 << ",\n";
    out << "    \"batched_scaling_jobs_1_to_4\": " << batched_scale_4 << ",\n";
    out << "    \"batched_scaling_jobs_1_to_8\": " << batched_scale_8 << ",\n";
    out << "    \"kernel_state_bytes_n30\": " << n30_state_bytes << ",\n";
    out << "    \"bytes_per_router_n30\": "
        << static_cast<double>(n30_state_bytes) / 30.0 << ",\n";
    out << "    \"peak_rss_bytes\": " << rss << ",\n";
    out << "    \"figure_suite\": {\n";
    out << "      \"figures\": [\n";
    for (std::size_t i = 0; i < figures.size(); ++i) {
        out << "        {\"name\": \"" << figures[i].name << "\", \"wall_ms\": "
            << figures[i].wall_ms << ", \"ok\": "
            << (figures[i].ok ? "true" : "false")
            << (i + 1 < figures.size() ? "},\n" : "}\n");
    }
    out << "      ],\n";
    out << "      \"total_wall_ms\": " << suite_ms << "\n";
    out << "    }\n";
    out << "  }";
    write_json_section(path, "sweep_wallclock", out.str());
    std::printf("wrote section \"sweep_wallclock\" of %s\n", path.c_str());

    return footer();
}
