// Engine micro-benchmarks (google-benchmark): throughput of the pieces
// every experiment leans on. Not a paper figure — a performance floor so
// regressions in the simulator core are visible.
//
// Takes the unified bench flags (bench/common.hpp): `--json` additionally
// writes machine-readable results (op, ns/op, items/sec) to
// BENCH_perf.json — or to `--out PATH` — next to the normal console
// output, so CI and docs/PERFORMANCE.md can consume the numbers without
// scraping the table. Unrecognised flags (e.g. --benchmark_filter) pass
// through to google-benchmark.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <deque>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench/common.hpp"
#include "core/core.hpp"
#include "markov/markov.hpp"
#include "net/net.hpp"
#include "obs/obs.hpp"
#include "parallel/parallel.hpp"
#include "rng/rng.hpp"
#include "routing/routing.hpp"
#include "stats/stats.hpp"

using namespace routesync;

namespace {

// The seed EventQueue implementation (std::priority_queue over fat
// entries, pending_/cancelled_ unordered_sets, std::function callbacks),
// kept verbatim as an in-binary baseline so BM_EventQueueLegacy_* vs
// BM_EventQueue_* is an honest before/after under identical conditions.
class LegacyEventQueue {
public:
    using Callback = std::function<void()>;

    struct Handle {
        std::uint64_t id = 0;
    };

    Handle push(sim::SimTime t, Callback cb) {
        const std::uint64_t id = next_id_++;
        heap_.push(Entry{t, id, id, std::move(cb)});
        pending_.insert(id);
        ++live_;
        return Handle{id};
    }

    bool cancel(Handle h) {
        const auto it = pending_.find(h.id);
        if (it == pending_.end()) {
            return false;
        }
        pending_.erase(it);
        cancelled_.insert(h.id);
        --live_;
        return true;
    }

    [[nodiscard]] bool empty() const noexcept { return live_ == 0; }

    struct Popped {
        sim::SimTime time;
        Callback callback;
    };
    Popped pop() {
        skip_cancelled();
        auto& top = const_cast<Entry&>(heap_.top());
        Popped out{top.time, std::move(top.callback)};
        pending_.erase(top.id);
        heap_.pop();
        --live_;
        return out;
    }

private:
    struct Entry {
        sim::SimTime time;
        std::uint64_t seq;
        std::uint64_t id;
        Callback callback;
    };
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const noexcept {
            if (a.time != b.time) {
                return a.time > b.time;
            }
            return a.seq > b.seq;
        }
    };

    void skip_cancelled() {
        while (!heap_.empty()) {
            const auto it = cancelled_.find(heap_.top().id);
            if (it == cancelled_.end()) {
                return;
            }
            cancelled_.erase(it);
            heap_.pop();
        }
    }

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::unordered_set<std::uint64_t> pending_;
    std::unordered_set<std::uint64_t> cancelled_;
    std::uint64_t next_id_ = 1;
    std::size_t live_ = 0;
};

// The seed packet path, kept as an in-binary baseline so the
// BM_PacketPath* pairs are an honest before/after: packets are fat value
// types dragging a shared_ptr payload (atomic refcounts, one heap
// allocation per update built), the delivery capture overflows the event
// queue's 48-byte inline budget (one heap allocation per hop), and
// drop-tail queues shuffle whole packets.
struct LegacyPayload {
    int sender = -1;
    bool triggered = false;
    std::vector<net::RouteEntry> entries;
    int filler_routes = 0;
};

struct LegacyPacket {
    net::PacketType type = net::PacketType::Data;
    net::NodeId src = -1;
    net::NodeId dst = -1;
    std::uint32_t size_bytes = 0;
    std::uint64_t seq = 0;
    sim::SimTime sent_at;
    std::shared_ptr<const LegacyPayload> update;
    int ttl = 64;
};

class LegacyLink {
public:
    LegacyLink(sim::Engine& engine, double rate_bps, sim::SimTime prop_delay,
               std::size_t queue_packets, std::function<void(LegacyPacket)> deliver)
        : engine_{engine},
          rate_bps_{rate_bps},
          prop_delay_{prop_delay},
          queue_limit_{queue_packets},
          deliver_{std::move(deliver)} {}

    void send(LegacyPacket p) {
        if (transmitting_) {
            if (queue_.size() < queue_limit_) {
                queue_.push_back(std::move(p));
            }
            return;
        }
        start_transmission(std::move(p));
    }

private:
    void start_transmission(LegacyPacket p) {
        transmitting_ = true;
        const sim::SimTime tx =
            rate_bps_ <= 0.0
                ? sim::SimTime::zero()
                : sim::SimTime::seconds(static_cast<double>(p.size_bytes) * 8.0 /
                                        rate_bps_);
        engine_.schedule_after(
            tx + prop_delay_,
            [this, pkt = std::move(p)]() mutable { deliver_(std::move(pkt)); });
        engine_.schedule_after(tx, [this] {
            transmitting_ = false;
            if (!queue_.empty()) {
                LegacyPacket next = std::move(queue_.front());
                queue_.pop_front();
                start_transmission(std::move(next));
            }
        });
    }

    sim::Engine& engine_;
    double rate_bps_;
    sim::SimTime prop_delay_;
    std::size_t queue_limit_;
    std::function<void(LegacyPacket)> deliver_;
    std::deque<LegacyPacket> queue_;
    bool transmitting_ = false;
};

void BM_MinStd(benchmark::State& state) {
    rng::MinStd gen{12345};
    for (auto _ : state) {
        benchmark::DoNotOptimize(gen());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MinStd);

void BM_Xoshiro256ss(benchmark::State& state) {
    rng::Xoshiro256ss gen{12345};
    for (auto _ : state) {
        benchmark::DoNotOptimize(gen());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Xoshiro256ss);

void BM_EventQueue_PushPop(benchmark::State& state) {
    const auto batch = static_cast<int>(state.range(0));
    sim::EventQueue q;
    rng::Xoshiro256ss gen{1};
    for (auto _ : state) {
        for (int i = 0; i < batch; ++i) {
            q.push(sim::SimTime::seconds(rng::uniform01(gen)), [] {});
        }
        while (!q.empty()) {
            benchmark::DoNotOptimize(q.pop().time);
        }
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueue_PushPop)->Arg(64)->Arg(1024)->Arg(16384);

void BM_EventQueueLegacy_PushPop(benchmark::State& state) {
    const auto batch = static_cast<int>(state.range(0));
    LegacyEventQueue q;
    rng::Xoshiro256ss gen{1};
    for (auto _ : state) {
        for (int i = 0; i < batch; ++i) {
            q.push(sim::SimTime::seconds(rng::uniform01(gen)), [] {});
        }
        while (!q.empty()) {
            benchmark::DoNotOptimize(q.pop().time);
        }
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueLegacy_PushPop)->Arg(64)->Arg(1024)->Arg(16384);

void BM_EventQueue_PushCancel(benchmark::State& state) {
    // The reschedule-before-firing pattern: every event is cancelled and
    // replaced. Exercises O(1) cancel plus the tombstone compaction.
    const auto batch = static_cast<int>(state.range(0));
    sim::EventQueue q;
    rng::Xoshiro256ss gen{1};
    std::vector<sim::EventHandle> handles(static_cast<std::size_t>(batch));
    for (auto _ : state) {
        for (int i = 0; i < batch; ++i) {
            handles[static_cast<std::size_t>(i)] =
                q.push(sim::SimTime::seconds(rng::uniform01(gen)), [] {});
        }
        for (int i = 0; i < batch; ++i) {
            benchmark::DoNotOptimize(q.cancel(handles[static_cast<std::size_t>(i)]));
        }
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueue_PushCancel)->Arg(1024)->Arg(16384);

void BM_EventQueueLegacy_PushCancel(benchmark::State& state) {
    const auto batch = static_cast<int>(state.range(0));
    LegacyEventQueue q;
    rng::Xoshiro256ss gen{1};
    std::vector<LegacyEventQueue::Handle> handles(static_cast<std::size_t>(batch));
    for (auto _ : state) {
        for (int i = 0; i < batch; ++i) {
            handles[static_cast<std::size_t>(i)] =
                q.push(sim::SimTime::seconds(rng::uniform01(gen)), [] {});
        }
        for (int i = 0; i < batch; ++i) {
            benchmark::DoNotOptimize(q.cancel(handles[static_cast<std::size_t>(i)]));
        }
        // Drain the tombstones so the legacy heap doesn't grow without
        // bound across iterations (its lazy scheme never compacts).
        while (!q.empty()) {
            benchmark::DoNotOptimize(q.pop().time);
        }
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueLegacy_PushCancel)->Arg(1024)->Arg(16384);

void BM_TrialRunner(benchmark::State& state) {
    // A fixed batch of independent trials fanned over state.range(0)
    // worker threads. On multi-core hardware items/sec should scale
    // near-linearly up to the physical core count (UseRealTime: wall
    // clock is what parallelism buys).
    const std::size_t jobs = static_cast<std::size_t>(state.range(0));
    const parallel::TrialRunner runner{{.jobs = jobs}};
    const int kTrials = 8;
    for (auto _ : state) {
        const auto results = runner.run_generated(kTrials, [](std::size_t i) {
            core::ExperimentConfig cfg;
            cfg.params.n = 20;
            cfg.params.tp = sim::SimTime::seconds(121);
            cfg.params.tc = sim::SimTime::seconds(0.11);
            cfg.params.tr = sim::SimTime::seconds(0.11);
            cfg.params.seed = parallel::derive_seed(42, i);
            cfg.max_time = sim::SimTime::seconds(2e4);
            return cfg;
        });
        benchmark::DoNotOptimize(results.size());
    }
    state.SetItemsProcessed(state.iterations() * kTrials);
}
BENCHMARK(BM_TrialRunner)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

core::ExperimentConfig kernel_trial_config(core::ExperimentBackend backend) {
    core::ExperimentConfig cfg;
    cfg.params.n = 20;
    cfg.params.tp = sim::SimTime::seconds(121);
    cfg.params.tc = sim::SimTime::seconds(0.11);
    cfg.params.tr = sim::SimTime::seconds(0.11);
    cfg.params.seed = 42;
    cfg.max_time = sim::SimTime::seconds(2e4);
    cfg.backend = backend;
    return cfg;
}

void BM_PMKernel_Trial(benchmark::State& state) {
    // One full experiment trial on the fused PM fast path (SoA state,
    // calendar queue, O(1) shared-busy broadcast). Compare against
    // BM_PMKernelLegacy_Trial: identical simulation, generic engine.
    const auto cfg = kernel_trial_config(core::ExperimentBackend::FastKernel);
    std::uint64_t events = 0;
    for (auto _ : state) {
        const auto r = core::run_experiment(cfg);
        events = r.events_processed;
        benchmark::DoNotOptimize(r.total_transmissions);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(events));
}
BENCHMARK(BM_PMKernel_Trial);

void BM_PMKernelLegacy_Trial(benchmark::State& state) {
    // The same trial, forced onto the generic DES engine +
    // PeriodicMessagesModel — the in-binary baseline for the kernel.
    const auto cfg = kernel_trial_config(core::ExperimentBackend::Engine);
    std::uint64_t events = 0;
    for (auto _ : state) {
        const auto r = core::run_experiment(cfg);
        events = r.events_processed;
        benchmark::DoNotOptimize(r.total_transmissions);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(events));
}
BENCHMARK(BM_PMKernelLegacy_Trial);

void BM_PMKernelBatched(benchmark::State& state) {
    // B copies of the kernel trial (distinct seeds) advanced lock-step
    // through PmKernelBatch's SoA lanes. items/sec counts events across
    // all lanes, so it is directly comparable to BM_PMKernel_Trial's
    // events/sec: the ratio at B=8/32 is the batching win, and B=1 shows
    // the batch driver's overhead over the plain scalar call.
    const std::size_t lanes = static_cast<std::size_t>(state.range(0));
    std::vector<core::ExperimentConfig> configs;
    for (std::size_t i = 0; i < lanes; ++i) {
        auto cfg = kernel_trial_config(core::ExperimentBackend::FastKernel);
        cfg.params.seed = parallel::derive_seed(42, i);
        configs.push_back(cfg);
    }
    std::uint64_t events = 0;
    for (auto _ : state) {
        const auto results = core::run_experiment_batch(configs);
        events = 0;
        for (const auto& r : results) {
            events += r.events_processed;
        }
        benchmark::DoNotOptimize(events);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(events));
}
BENCHMARK(BM_PMKernelBatched)->Arg(1)->Arg(8)->Arg(32);

void BM_SweepScheduler(benchmark::State& state) {
    // BM_TrialRunner's batch through the global work-stealing scheduler:
    // one pooled task set instead of a per-batch barrier. items/sec are
    // trials per wall-clock second (UseRealTime).
    const std::size_t jobs = static_cast<std::size_t>(state.range(0));
    const int kTrials = 8;
    for (auto _ : state) {
        parallel::SweepScheduler scheduler{{.jobs = jobs}};
        const auto results =
            scheduler.run_generated(kTrials, [](std::size_t i) {
                core::ExperimentConfig cfg;
                cfg.params.n = 20;
                cfg.params.tp = sim::SimTime::seconds(121);
                cfg.params.tc = sim::SimTime::seconds(0.11);
                cfg.params.tr = sim::SimTime::seconds(0.11);
                cfg.params.seed = parallel::derive_seed(42, i);
                cfg.max_time = sim::SimTime::seconds(2e4);
                return cfg;
            });
        benchmark::DoNotOptimize(results.size());
    }
    state.SetItemsProcessed(state.iterations() * kTrials);
}
BENCHMARK(BM_SweepScheduler)->Arg(1)->Arg(4)->Arg(8)->UseRealTime();

void BM_Engine_SelfSchedulingChain(benchmark::State& state) {
    for (auto _ : state) {
        sim::Engine engine;
        int remaining = 10000;
        std::function<void()> tick = [&] {
            if (--remaining > 0) {
                engine.schedule_after(sim::SimTime::seconds(1), tick);
            }
        };
        engine.schedule_at(sim::SimTime::zero(), tick);
        engine.run();
        benchmark::DoNotOptimize(engine.events_processed());
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_Engine_SelfSchedulingChain);

void BM_PeriodicMessages_SimSecond(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    sim::Engine engine;
    core::ModelParams p;
    p.n = n;
    p.seed = 3;
    core::PeriodicMessagesModel model{engine, p};
    double horizon = 0.0;
    for (auto _ : state) {
        horizon += 1000.0; // one thousand simulated seconds per iteration
        engine.run_until(sim::SimTime::seconds(horizon));
        benchmark::DoNotOptimize(model.total_transmissions());
    }
    state.SetItemsProcessed(state.iterations() * 1000); // simulated seconds
}
BENCHMARK(BM_PeriodicMessages_SimSecond)->Arg(20)->Arg(100);

void BM_Autocorrelation(benchmark::State& state) {
    std::vector<double> xs;
    rng::Xoshiro256ss gen{9};
    for (int i = 0; i < 1000; ++i) {
        xs.push_back(rng::uniform01(gen));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(stats::autocorrelation(xs, 200));
    }
}
BENCHMARK(BM_Autocorrelation);

void BM_ClusterPhases(benchmark::State& state) {
    std::vector<double> offsets;
    rng::Xoshiro256ss gen{5};
    for (int i = 0; i < 1000; ++i) {
        offsets.push_back(rng::uniform_real(gen, 0.0, 121.11));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(stats::cluster_phases(offsets, 121.11, 0.11));
    }
}
BENCHMARK(BM_ClusterPhases);

void BM_FJChain_HittingTimes(benchmark::State& state) {
    markov::ChainParams p;
    p.n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        const markov::FJChain chain{p};
        benchmark::DoNotOptimize(chain.f_rounds());
        benchmark::DoNotOptimize(chain.g_rounds());
    }
}
BENCHMARK(BM_FJChain_HittingTimes)->Arg(20)->Arg(200);

void shared_lan_saturated(benchmark::State& state,
                          net::elements::DispatchMode dispatch) {
    sim::Engine engine;
    net::SharedLanConfig cfg;
    cfg.station_queue_packets = 1 << 20;
    cfg.dispatch = dispatch;
    net::SharedLan lan{engine, cfg};
    for (int i = 0; i < 4; ++i) {
        lan.attach([](net::Packet) {});
    }
    std::uint64_t seq = 0;
    for (auto _ : state) {
        for (int i = 0; i < 256; ++i) {
            net::Packet p;
            p.size_bytes = 1000;
            p.seq = seq++;
            lan.send(static_cast<int>(seq % 4), p);
        }
        engine.run();
        benchmark::DoNotOptimize(lan.stats().frames_delivered);
    }
    state.SetItemsProcessed(state.iterations() * 256);
}

/// The checked-virtual reference (the pre-fast-path medium).
void BM_SharedLanSaturated(benchmark::State& state) {
    shared_lan_saturated(state, net::elements::DispatchMode::Virtual);
}
BENCHMARK(BM_SharedLanSaturated);

/// The default fast path: devirtualized station queues + fused fan-out.
void BM_SharedLanSaturatedFast(benchmark::State& state) {
    shared_lan_saturated(state, net::elements::DispatchMode::Fast);
}
BENCHMARK(BM_SharedLanSaturatedFast);

// ----------------------------------------------------- packet hot path

constexpr int kBurst = 64;
constexpr int kFanOut = 4;
constexpr int kChainHops = 8;
constexpr int kEntriesPerUpdate = 25;

/// Enqueue→deliver of one routing update: build a 25-entry payload,
/// enqueue the packet on a link, deliver at the far end. This is the
/// per-interface lifecycle of a periodic update under the default
/// split-horizon config (each interface gets its own payload build).
void packet_path_enqueue_deliver(benchmark::State& state,
                                 net::elements::DispatchMode dispatch) {
    sim::Engine engine;
    std::uint64_t delivered = 0;
    net::Link link{engine,
                   net::LinkConfig{.rate_bps = 0.0,
                                   .delay = sim::SimTime::micros(1),
                                   .queue_packets = 512,
                                   .dispatch = dispatch},
                   [&delivered](net::PooledPacket) { ++delivered; }};
    std::uint64_t seq = 0;
    for (auto _ : state) {
        for (int i = 0; i < kBurst; ++i) {
            net::Packet p;
            p.type = net::PacketType::RoutingUpdate;
            p.src = 0;
            p.dst = 1;
            p.size_bytes = 524;
            p.seq = seq++;
            net::PayloadRef ref = net::PayloadPool::local().acquire();
            auto& payload = ref.mutate();
            payload.sender = 0;
            for (int e = 0; e < kEntriesPerUpdate; ++e) {
                payload.entries.push_back({e, e % 15});
            }
            p.update = std::move(ref);
            link.send(std::move(p));
        }
        engine.run();
        benchmark::DoNotOptimize(delivered);
    }
    state.SetItemsProcessed(state.iterations() * kBurst);
}

/// The same enqueue→deliver loop with a tracer attached — measures the
/// observability layer's per-packet cost when tracing is ON. Two sink
/// variants: NullSink (event construction + virtual dispatch only) and
/// RingBufferSink (plus the deque). The tracing-OFF overhead is the
/// plain BM_PacketPath_EnqueueDeliver benchmark: its emit sites reduce
/// to one null-pointer test.
template <typename Sink, typename... Args>
void packet_path_traced(benchmark::State& state, Args&&... args) {
    sim::Engine engine;
    Sink sink{std::forward<Args>(args)...};
    obs::Tracer tracer{sink};
    engine.set_tracer(&tracer);
    std::uint64_t delivered = 0;
    net::Link link{engine,
                   net::LinkConfig{.rate_bps = 0.0,
                                   .delay = sim::SimTime::micros(1),
                                   .queue_packets = 512},
                   [&delivered](net::PooledPacket) { ++delivered; }};
    std::uint64_t seq = 0;
    for (auto _ : state) {
        for (int i = 0; i < kBurst; ++i) {
            net::Packet p;
            p.type = net::PacketType::RoutingUpdate;
            p.src = 0;
            p.dst = 1;
            p.size_bytes = 524;
            p.seq = seq++;
            net::PayloadRef ref = net::PayloadPool::local().acquire();
            auto& payload = ref.mutate();
            payload.sender = 0;
            for (int e = 0; e < kEntriesPerUpdate; ++e) {
                payload.entries.push_back({e, e % 15});
            }
            p.update = std::move(ref);
            link.send(std::move(p));
        }
        engine.run();
        benchmark::DoNotOptimize(delivered);
    }
    state.SetItemsProcessed(state.iterations() * kBurst);
}

/// The checked-virtual reference (the pre-fast-path element dispatch).
void BM_PacketPath_EnqueueDeliver(benchmark::State& state) {
    packet_path_enqueue_deliver(state, net::elements::DispatchMode::Virtual);
}
BENCHMARK(BM_PacketPath_EnqueueDeliver);

/// The default fast path: devirtualized ports + coalesced backlog drain.
void BM_PacketPathFast_EnqueueDeliver(benchmark::State& state) {
    packet_path_enqueue_deliver(state, net::elements::DispatchMode::Fast);
}
BENCHMARK(BM_PacketPathFast_EnqueueDeliver);

void BM_PacketPath_EnqueueDeliver_TracedNull(benchmark::State& state) {
    packet_path_traced<obs::NullSink>(state);
}
BENCHMARK(BM_PacketPath_EnqueueDeliver_TracedNull);

void BM_PacketPath_EnqueueDeliver_TracedRing(benchmark::State& state) {
    packet_path_traced<obs::RingBufferSink>(state, std::size_t{1} << 16);
}
BENCHMARK(BM_PacketPath_EnqueueDeliver_TracedRing);

void BM_PacketPathLegacy_EnqueueDeliver(benchmark::State& state) {
    sim::Engine engine;
    std::uint64_t delivered = 0;
    LegacyLink link{engine, 0.0, sim::SimTime::micros(1), 512,
                    [&delivered](LegacyPacket) { ++delivered; }};
    std::uint64_t seq = 0;
    for (auto _ : state) {
        for (int i = 0; i < kBurst; ++i) {
            LegacyPacket p;
            p.type = net::PacketType::RoutingUpdate;
            p.src = 0;
            p.dst = 1;
            p.size_bytes = 524;
            p.seq = seq++;
            auto payload = std::make_shared<LegacyPayload>();
            payload->sender = 0;
            for (int e = 0; e < kEntriesPerUpdate; ++e) {
                payload->entries.push_back({e, e % 15});
            }
            p.update = std::move(payload);
            link.send(std::move(p));
        }
        engine.run();
        benchmark::DoNotOptimize(delivered);
    }
    state.SetItemsProcessed(state.iterations() * kBurst);
}
BENCHMARK(BM_PacketPathLegacy_EnqueueDeliver);

/// The broadcast variant (split horizon off): one payload fanned out as
/// 4 packet copies — the new path shares one pooled slot, the legacy
/// path bumps an atomic shared_ptr per copy.
void packet_path_broadcast(benchmark::State& state,
                           net::elements::DispatchMode dispatch) {
    sim::Engine engine;
    std::uint64_t delivered = 0;
    std::vector<std::unique_ptr<net::Link>> links;
    for (int i = 0; i < kFanOut; ++i) {
        links.push_back(std::make_unique<net::Link>(
            engine,
            net::LinkConfig{.rate_bps = 0.0,
                            .delay = sim::SimTime::micros(1),
                            .queue_packets = 512,
                            .dispatch = dispatch},
            [&delivered](net::PooledPacket) { ++delivered; }));
    }
    std::uint64_t seq = 0;
    for (auto _ : state) {
        for (int i = 0; i < kBurst; ++i) {
            net::Packet p;
            p.type = net::PacketType::RoutingUpdate;
            p.src = 0;
            p.size_bytes = 524;
            p.seq = seq++;
            net::PayloadRef ref = net::PayloadPool::local().acquire();
            auto& payload = ref.mutate();
            payload.sender = 0;
            for (int e = 0; e < kEntriesPerUpdate; ++e) {
                payload.entries.push_back({e, e % 15});
            }
            p.update = std::move(ref);
            for (int iface = 0; iface < kFanOut; ++iface) {
                net::Packet copy = p; // payload slot shared, not reallocated
                copy.dst = iface;
                links[static_cast<std::size_t>(iface)]->send(std::move(copy));
            }
        }
        engine.run();
        benchmark::DoNotOptimize(delivered);
    }
    state.SetItemsProcessed(state.iterations() * kBurst * kFanOut);
}

/// The checked-virtual reference (the pre-fast-path element dispatch).
void BM_PacketPath_Broadcast(benchmark::State& state) {
    packet_path_broadcast(state, net::elements::DispatchMode::Virtual);
}
BENCHMARK(BM_PacketPath_Broadcast);

/// The default fast path. The cross-link round-robin delivery order is
/// part of the bit-identity contract, so the per-packet event pair
/// cannot be coalesced here — gains come from devirtualized dispatch,
/// duplicate-time event chaining, and trivially-copyable captures.
void BM_PacketPathFast_Broadcast(benchmark::State& state) {
    packet_path_broadcast(state, net::elements::DispatchMode::Fast);
}
BENCHMARK(BM_PacketPathFast_Broadcast);

void BM_PacketPathLegacy_Broadcast(benchmark::State& state) {
    sim::Engine engine;
    std::uint64_t delivered = 0;
    std::vector<std::unique_ptr<LegacyLink>> links;
    for (int i = 0; i < kFanOut; ++i) {
        links.push_back(std::make_unique<LegacyLink>(
            engine, 0.0, sim::SimTime::micros(1), 512,
            [&delivered](LegacyPacket) { ++delivered; }));
    }
    std::uint64_t seq = 0;
    for (auto _ : state) {
        for (int i = 0; i < kBurst; ++i) {
            LegacyPacket p;
            p.type = net::PacketType::RoutingUpdate;
            p.src = 0;
            p.size_bytes = 524;
            p.seq = seq++;
            auto payload = std::make_shared<LegacyPayload>();
            payload->sender = 0;
            for (int e = 0; e < kEntriesPerUpdate; ++e) {
                payload->entries.push_back({e, e % 15});
            }
            p.update = std::move(payload);
            for (int iface = 0; iface < kFanOut; ++iface) {
                LegacyPacket copy = p; // shared_ptr atomic bump per copy
                copy.dst = iface;
                links[static_cast<std::size_t>(iface)]->send(std::move(copy));
            }
        }
        engine.run();
        benchmark::DoNotOptimize(delivered);
    }
    state.SetItemsProcessed(state.iterations() * kBurst * kFanOut);
}
BENCHMARK(BM_PacketPathLegacy_Broadcast);

/// Multi-hop forwarding context: the same update packets relayed down an
/// 8-hop link chain, where shared event-engine cost dominates and the
/// per-hop delta is what remains visible.
void packet_path_forward_chain(benchmark::State& state,
                               net::elements::DispatchMode dispatch) {
    sim::Engine engine;
    std::uint64_t delivered = 0;
    std::vector<std::unique_ptr<net::Link>> chain(kChainHops);
    for (int hop = kChainHops - 1; hop >= 0; --hop) {
        std::function<void(net::PooledPacket)> deliver;
        if (hop == kChainHops - 1) {
            deliver = [&delivered](net::PooledPacket) { ++delivered; };
        } else {
            deliver = [&chain, hop](net::PooledPacket p) {
                chain[static_cast<std::size_t>(hop + 1)]->send(std::move(p));
            };
        }
        chain[static_cast<std::size_t>(hop)] = std::make_unique<net::Link>(
            engine,
            net::LinkConfig{.rate_bps = 0.0,
                            .delay = sim::SimTime::micros(1),
                            .queue_packets = 512,
                            .dispatch = dispatch},
            std::move(deliver));
    }
    std::uint64_t seq = 0;
    for (auto _ : state) {
        for (int i = 0; i < kBurst; ++i) {
            net::Packet p;
            p.type = net::PacketType::RoutingUpdate;
            p.src = 0;
            p.dst = 1;
            p.size_bytes = 524;
            p.seq = seq++;
            net::PayloadRef ref = net::PayloadPool::local().acquire();
            auto& payload = ref.mutate();
            payload.sender = 0;
            for (int e = 0; e < kEntriesPerUpdate; ++e) {
                payload.entries.push_back({e, e % 15});
            }
            p.update = std::move(ref);
            chain[0]->send(std::move(p));
        }
        engine.run();
        benchmark::DoNotOptimize(delivered);
    }
    state.SetItemsProcessed(state.iterations() * kBurst * kChainHops);
}

/// The checked-virtual reference (the pre-fast-path element dispatch).
void BM_PacketPath_ForwardChain(benchmark::State& state) {
    packet_path_forward_chain(state, net::elements::DispatchMode::Virtual);
}
BENCHMARK(BM_PacketPath_ForwardChain);

/// The default fast path: each hop's backlog drains in one coalesced
/// batch, so the per-hop event count collapses.
void BM_PacketPathFast_ForwardChain(benchmark::State& state) {
    packet_path_forward_chain(state, net::elements::DispatchMode::Fast);
}
BENCHMARK(BM_PacketPathFast_ForwardChain);

void BM_PacketPathLegacy_ForwardChain(benchmark::State& state) {
    sim::Engine engine;
    std::uint64_t delivered = 0;
    std::vector<std::unique_ptr<LegacyLink>> chain(kChainHops);
    for (int hop = kChainHops - 1; hop >= 0; --hop) {
        std::function<void(LegacyPacket)> deliver;
        if (hop == kChainHops - 1) {
            deliver = [&delivered](LegacyPacket) { ++delivered; };
        } else {
            deliver = [&chain, hop](LegacyPacket p) {
                chain[static_cast<std::size_t>(hop + 1)]->send(std::move(p));
            };
        }
        chain[static_cast<std::size_t>(hop)] = std::make_unique<LegacyLink>(
            engine, 0.0, sim::SimTime::micros(1), 512, std::move(deliver));
    }
    std::uint64_t seq = 0;
    for (auto _ : state) {
        for (int i = 0; i < kBurst; ++i) {
            LegacyPacket p;
            p.type = net::PacketType::RoutingUpdate;
            p.src = 0;
            p.dst = 1;
            p.size_bytes = 524;
            p.seq = seq++;
            auto payload = std::make_shared<LegacyPayload>();
            payload->sender = 0;
            for (int e = 0; e < kEntriesPerUpdate; ++e) {
                payload->entries.push_back({e, e % 15});
            }
            p.update = std::move(payload);
            chain[0]->send(std::move(p));
        }
        engine.run();
        benchmark::DoNotOptimize(delivered);
    }
    state.SetItemsProcessed(state.iterations() * kBurst * kChainHops);
}
BENCHMARK(BM_PacketPathLegacy_ForwardChain);

/// Building one update payload and handing it to a packet — the pooled
/// slot recycles its entry-vector capacity; the legacy path pays a
/// make_shared plus vector growth every time.
void BM_UpdatePayload_Pooled(benchmark::State& state) {
    net::PayloadPool pool;
    for (auto _ : state) {
        net::PayloadRef ref = pool.acquire();
        auto& payload = ref.mutate();
        payload.sender = 3;
        for (int e = 0; e < kEntriesPerUpdate; ++e) {
            payload.entries.push_back({e, 1});
        }
        net::Packet p;
        p.update = std::move(ref);
        benchmark::DoNotOptimize(p.update->entries.size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UpdatePayload_Pooled);

void BM_UpdatePayloadLegacy_Heap(benchmark::State& state) {
    for (auto _ : state) {
        auto payload = std::make_shared<LegacyPayload>();
        payload->sender = 3;
        for (int e = 0; e < kEntriesPerUpdate; ++e) {
            payload->entries.push_back({e, 1});
        }
        LegacyPacket p;
        p.update = std::move(payload);
        benchmark::DoNotOptimize(p.update->entries.size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UpdatePayloadLegacy_Heap);

// -------------------------------------------------------- routing table

constexpr int kTableRoutes = 256;

routing::RoutingTable make_flat_table() {
    routing::RoutingTable table;
    for (int d = 0; d < kTableRoutes; ++d) {
        routing::Route r{};
        r.dest = d * 2; // leave odd ids as misses
        r.metric = d % 15;
        table.upsert(r);
    }
    return table;
}

std::map<net::NodeId, routing::Route> make_map_table() {
    std::map<net::NodeId, routing::Route> table;
    for (int d = 0; d < kTableRoutes; ++d) {
        routing::Route r{};
        r.dest = d * 2;
        r.metric = d % 15;
        table[r.dest] = r;
    }
    return table;
}

/// Full-table walk — what the DV agent does every period to build its
/// updates, and what the expiry pass scans. The dominant table access in
/// steady state: a contiguous scan for the flat table, node-chasing for
/// the map.
void BM_RoutingTable_Flat_Walk(benchmark::State& state) {
    const auto table = make_flat_table();
    for (auto _ : state) {
        std::int64_t sum = 0;
        for (const auto& route : table) {
            sum += route.metric + route.dest;
        }
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * kTableRoutes);
}
BENCHMARK(BM_RoutingTable_Flat_Walk);

void BM_RoutingTableLegacy_Map_Walk(benchmark::State& state) {
    const auto table = make_map_table();
    for (auto _ : state) {
        std::int64_t sum = 0;
        for (const auto& [dest, route] : table) {
            sum += route.metric + route.dest;
        }
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * kTableRoutes);
}
BENCHMARK(BM_RoutingTableLegacy_Map_Walk);

/// Point lookups, half the probes missing — the receive-path access.
void BM_RoutingTable_Flat_Find(benchmark::State& state) {
    auto table = make_flat_table();
    for (auto _ : state) {
        std::int64_t sum = 0;
        for (int d = 0; d < 2 * kTableRoutes; ++d) {
            const auto* r = table.find(d);
            sum += r != nullptr ? r->metric : 0;
        }
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * 2 * kTableRoutes);
}
BENCHMARK(BM_RoutingTable_Flat_Find);

void BM_RoutingTableLegacy_Map_Find(benchmark::State& state) {
    auto table = make_map_table();
    for (auto _ : state) {
        std::int64_t sum = 0;
        for (int d = 0; d < 2 * kTableRoutes; ++d) {
            const auto it = table.find(d);
            sum += it != table.end() ? it->second.metric : 0;
        }
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * 2 * kTableRoutes);
}
BENCHMARK(BM_RoutingTableLegacy_Map_Find);

// ------------------------------------------------------- spectral paths

std::vector<double> bench_series(std::size_t n) {
    std::vector<double> xs;
    xs.reserve(n);
    rng::Xoshiro256ss gen{9};
    for (std::size_t i = 0; i < n; ++i) {
        xs.push_back(rng::uniform01(gen));
    }
    return xs;
}

void BM_Periodogram_FFT(benchmark::State& state) {
    const auto xs = bench_series(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(stats::periodogram(xs));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Periodogram_FFT)->Arg(1024)->Arg(16384);

void BM_PeriodogramLegacy_Naive(benchmark::State& state) {
    const auto xs = bench_series(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(stats::periodogram_naive(xs));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PeriodogramLegacy_Naive)->Arg(1024)->Arg(16384);

void BM_Autocorrelation_FFT(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const auto xs = bench_series(n);
    for (auto _ : state) {
        benchmark::DoNotOptimize(stats::autocorrelation(xs, n / 4));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Autocorrelation_FFT)->Arg(1024)->Arg(16384);

void BM_AutocorrelationLegacy_Naive(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const auto xs = bench_series(n);
    for (auto _ : state) {
        benchmark::DoNotOptimize(stats::autocorrelation_naive(xs, n / 4));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AutocorrelationLegacy_Naive)->Arg(1024)->Arg(16384);

void BM_DvFullMeshSimSecond(benchmark::State& state) {
    sim::Engine engine;
    net::Network nw{engine};
    const int n = 6;
    std::vector<net::Router*> routers;
    for (int i = 0; i < n; ++i) {
        routers.push_back(&nw.add_router("r" + std::to_string(i)));
    }
    for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) {
            nw.connect(*routers[static_cast<std::size_t>(i)],
                       *routers[static_cast<std::size_t>(j)]);
        }
    }
    nw.install_static_routes();
    routing::DvConfig dv;
    dv.period = sim::SimTime::seconds(20);
    dv.jitter = sim::SimTime::seconds(1);
    dv.filler_routes = 300;
    std::vector<std::unique_ptr<routing::DistanceVectorAgent>> agents;
    for (int i = 0; i < n; ++i) {
        routing::DvConfig c = dv;
        c.seed = static_cast<std::uint64_t>(i) + 1;
        agents.push_back(
            std::make_unique<routing::DistanceVectorAgent>(*routers[static_cast<std::size_t>(i)], c));
        agents.back()->start(sim::SimTime::seconds(0.1 * i));
    }
    double horizon = 0.0;
    for (auto _ : state) {
        horizon += 1000.0;
        engine.run_until(sim::SimTime::seconds(horizon));
        benchmark::DoNotOptimize(engine.events_processed());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_DvFullMeshSimSecond);

// ------------------------------------------------------ --json support

/// Wraps the normal console reporter and additionally collects every
/// per-iteration run as (op, ns/op, items/sec), written as JSON when the
/// run finishes.
class JsonPerfReporter : public benchmark::BenchmarkReporter {
public:
    JsonPerfReporter(std::string path, benchmark::BenchmarkReporter* inner)
        : path_{std::move(path)}, inner_{inner} {}

    bool ReportContext(const Context& context) override {
        return inner_->ReportContext(context);
    }

    void ReportRuns(const std::vector<Run>& report) override {
        inner_->ReportRuns(report);
        for (const Run& run : report) {
            if (run.run_type != Run::RT_Iteration || run.error_occurred) {
                continue;
            }
            Entry e;
            e.op = run.benchmark_name();
            const double seconds =
                run.iterations > 0
                    ? run.real_accumulated_time / static_cast<double>(run.iterations)
                    : run.real_accumulated_time;
            e.ns_per_op = seconds * 1e9;
            const auto it = run.counters.find("items_per_second");
            e.items_per_second = it != run.counters.end() ? it->second.value : 0.0;
            entries_.push_back(std::move(e));
        }
    }

    void Finalize() override {
        inner_->Finalize();
        std::ofstream out{path_};
        out << "[\n";
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            const Entry& e = entries_[i];
            out << "  {\"op\": \"" << escape(e.op) << "\", \"ns_per_op\": "
                << e.ns_per_op << ", \"items_per_second\": " << e.items_per_second
                << "}" << (i + 1 < entries_.size() ? "," : "") << "\n";
        }
        out << "]\n";
    }

private:
    struct Entry {
        std::string op;
        double ns_per_op = 0.0;
        double items_per_second = 0.0;
    };

    static std::string escape(const std::string& s) {
        std::string out;
        for (const char c : s) {
            if (c == '"' || c == '\\') {
                out.push_back('\\');
            }
            out.push_back(c);
        }
        return out;
    }

    std::string path_;
    benchmark::BenchmarkReporter* inner_;
    std::vector<Entry> entries_;
};

} // namespace

int main(int argc, char** argv) {
    bench::OptionsSpec spec;
    spec.allow_unknown = true; // google-benchmark owns --benchmark_* flags
    spec.description = "engine micro-benchmarks (performance floor)";
    bench::Options& options = bench::parse_options(argc, argv, spec);

    std::vector<char*> args;
    args.push_back(argv[0]);
    for (std::string& passed : options.passthrough) {
        args.push_back(passed.data());
    }
    int filtered_argc = static_cast<int>(args.size());
    benchmark::Initialize(&filtered_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
        return 1;
    }
    std::unique_ptr<benchmark::BenchmarkReporter> display{
        benchmark::CreateDefaultDisplayReporter()};
    if (!options.json) {
        benchmark::RunSpecifiedBenchmarks(display.get());
    } else {
        const std::string path =
            options.out.empty() ? "BENCH_perf.json" : options.out;
        JsonPerfReporter reporter{path, display.get()};
        benchmark::RunSpecifiedBenchmarks(&reporter);
    }
    benchmark::Shutdown();
    return 0;
}
