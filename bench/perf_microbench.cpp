// Engine micro-benchmarks (google-benchmark): throughput of the pieces
// every experiment leans on. Not a paper figure — a performance floor so
// regressions in the simulator core are visible.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "core/core.hpp"
#include "markov/markov.hpp"
#include "net/net.hpp"
#include "parallel/parallel.hpp"
#include "rng/rng.hpp"
#include "routing/routing.hpp"
#include "stats/stats.hpp"

using namespace routesync;

namespace {

// The seed EventQueue implementation (std::priority_queue over fat
// entries, pending_/cancelled_ unordered_sets, std::function callbacks),
// kept verbatim as an in-binary baseline so BM_EventQueueLegacy_* vs
// BM_EventQueue_* is an honest before/after under identical conditions.
class LegacyEventQueue {
public:
    using Callback = std::function<void()>;

    struct Handle {
        std::uint64_t id = 0;
    };

    Handle push(sim::SimTime t, Callback cb) {
        const std::uint64_t id = next_id_++;
        heap_.push(Entry{t, id, id, std::move(cb)});
        pending_.insert(id);
        ++live_;
        return Handle{id};
    }

    bool cancel(Handle h) {
        const auto it = pending_.find(h.id);
        if (it == pending_.end()) {
            return false;
        }
        pending_.erase(it);
        cancelled_.insert(h.id);
        --live_;
        return true;
    }

    [[nodiscard]] bool empty() const noexcept { return live_ == 0; }

    struct Popped {
        sim::SimTime time;
        Callback callback;
    };
    Popped pop() {
        skip_cancelled();
        auto& top = const_cast<Entry&>(heap_.top());
        Popped out{top.time, std::move(top.callback)};
        pending_.erase(top.id);
        heap_.pop();
        --live_;
        return out;
    }

private:
    struct Entry {
        sim::SimTime time;
        std::uint64_t seq;
        std::uint64_t id;
        Callback callback;
    };
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const noexcept {
            if (a.time != b.time) {
                return a.time > b.time;
            }
            return a.seq > b.seq;
        }
    };

    void skip_cancelled() {
        while (!heap_.empty()) {
            const auto it = cancelled_.find(heap_.top().id);
            if (it == cancelled_.end()) {
                return;
            }
            cancelled_.erase(it);
            heap_.pop();
        }
    }

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::unordered_set<std::uint64_t> pending_;
    std::unordered_set<std::uint64_t> cancelled_;
    std::uint64_t next_id_ = 1;
    std::size_t live_ = 0;
};

void BM_MinStd(benchmark::State& state) {
    rng::MinStd gen{12345};
    for (auto _ : state) {
        benchmark::DoNotOptimize(gen());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MinStd);

void BM_Xoshiro256ss(benchmark::State& state) {
    rng::Xoshiro256ss gen{12345};
    for (auto _ : state) {
        benchmark::DoNotOptimize(gen());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Xoshiro256ss);

void BM_EventQueue_PushPop(benchmark::State& state) {
    const auto batch = static_cast<int>(state.range(0));
    sim::EventQueue q;
    rng::Xoshiro256ss gen{1};
    for (auto _ : state) {
        for (int i = 0; i < batch; ++i) {
            q.push(sim::SimTime::seconds(rng::uniform01(gen)), [] {});
        }
        while (!q.empty()) {
            benchmark::DoNotOptimize(q.pop().time);
        }
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueue_PushPop)->Arg(64)->Arg(1024)->Arg(16384);

void BM_EventQueueLegacy_PushPop(benchmark::State& state) {
    const auto batch = static_cast<int>(state.range(0));
    LegacyEventQueue q;
    rng::Xoshiro256ss gen{1};
    for (auto _ : state) {
        for (int i = 0; i < batch; ++i) {
            q.push(sim::SimTime::seconds(rng::uniform01(gen)), [] {});
        }
        while (!q.empty()) {
            benchmark::DoNotOptimize(q.pop().time);
        }
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueLegacy_PushPop)->Arg(64)->Arg(1024)->Arg(16384);

void BM_EventQueue_PushCancel(benchmark::State& state) {
    // The reschedule-before-firing pattern: every event is cancelled and
    // replaced. Exercises O(1) cancel plus the tombstone compaction.
    const auto batch = static_cast<int>(state.range(0));
    sim::EventQueue q;
    rng::Xoshiro256ss gen{1};
    std::vector<sim::EventHandle> handles(static_cast<std::size_t>(batch));
    for (auto _ : state) {
        for (int i = 0; i < batch; ++i) {
            handles[static_cast<std::size_t>(i)] =
                q.push(sim::SimTime::seconds(rng::uniform01(gen)), [] {});
        }
        for (int i = 0; i < batch; ++i) {
            benchmark::DoNotOptimize(q.cancel(handles[static_cast<std::size_t>(i)]));
        }
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueue_PushCancel)->Arg(1024)->Arg(16384);

void BM_EventQueueLegacy_PushCancel(benchmark::State& state) {
    const auto batch = static_cast<int>(state.range(0));
    LegacyEventQueue q;
    rng::Xoshiro256ss gen{1};
    std::vector<LegacyEventQueue::Handle> handles(static_cast<std::size_t>(batch));
    for (auto _ : state) {
        for (int i = 0; i < batch; ++i) {
            handles[static_cast<std::size_t>(i)] =
                q.push(sim::SimTime::seconds(rng::uniform01(gen)), [] {});
        }
        for (int i = 0; i < batch; ++i) {
            benchmark::DoNotOptimize(q.cancel(handles[static_cast<std::size_t>(i)]));
        }
        // Drain the tombstones so the legacy heap doesn't grow without
        // bound across iterations (its lazy scheme never compacts).
        while (!q.empty()) {
            benchmark::DoNotOptimize(q.pop().time);
        }
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueLegacy_PushCancel)->Arg(1024)->Arg(16384);

void BM_TrialRunner(benchmark::State& state) {
    // A fixed batch of independent trials fanned over state.range(0)
    // worker threads. On multi-core hardware items/sec should scale
    // near-linearly up to the physical core count (UseRealTime: wall
    // clock is what parallelism buys).
    const std::size_t jobs = static_cast<std::size_t>(state.range(0));
    const parallel::TrialRunner runner{{.jobs = jobs}};
    const int kTrials = 8;
    for (auto _ : state) {
        const auto results = runner.run_generated(kTrials, [](std::size_t i) {
            core::ExperimentConfig cfg;
            cfg.params.n = 20;
            cfg.params.tp = sim::SimTime::seconds(121);
            cfg.params.tc = sim::SimTime::seconds(0.11);
            cfg.params.tr = sim::SimTime::seconds(0.11);
            cfg.params.seed = parallel::derive_seed(42, i);
            cfg.max_time = sim::SimTime::seconds(2e4);
            return cfg;
        });
        benchmark::DoNotOptimize(results.size());
    }
    state.SetItemsProcessed(state.iterations() * kTrials);
}
BENCHMARK(BM_TrialRunner)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_Engine_SelfSchedulingChain(benchmark::State& state) {
    for (auto _ : state) {
        sim::Engine engine;
        int remaining = 10000;
        std::function<void()> tick = [&] {
            if (--remaining > 0) {
                engine.schedule_after(sim::SimTime::seconds(1), tick);
            }
        };
        engine.schedule_at(sim::SimTime::zero(), tick);
        engine.run();
        benchmark::DoNotOptimize(engine.events_processed());
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_Engine_SelfSchedulingChain);

void BM_PeriodicMessages_SimSecond(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    sim::Engine engine;
    core::ModelParams p;
    p.n = n;
    p.seed = 3;
    core::PeriodicMessagesModel model{engine, p};
    double horizon = 0.0;
    for (auto _ : state) {
        horizon += 1000.0; // one thousand simulated seconds per iteration
        engine.run_until(sim::SimTime::seconds(horizon));
        benchmark::DoNotOptimize(model.total_transmissions());
    }
    state.SetItemsProcessed(state.iterations() * 1000); // simulated seconds
}
BENCHMARK(BM_PeriodicMessages_SimSecond)->Arg(20)->Arg(100);

void BM_Autocorrelation(benchmark::State& state) {
    std::vector<double> xs;
    rng::Xoshiro256ss gen{9};
    for (int i = 0; i < 1000; ++i) {
        xs.push_back(rng::uniform01(gen));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(stats::autocorrelation(xs, 200));
    }
}
BENCHMARK(BM_Autocorrelation);

void BM_ClusterPhases(benchmark::State& state) {
    std::vector<double> offsets;
    rng::Xoshiro256ss gen{5};
    for (int i = 0; i < 1000; ++i) {
        offsets.push_back(rng::uniform_real(gen, 0.0, 121.11));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(stats::cluster_phases(offsets, 121.11, 0.11));
    }
}
BENCHMARK(BM_ClusterPhases);

void BM_FJChain_HittingTimes(benchmark::State& state) {
    markov::ChainParams p;
    p.n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        const markov::FJChain chain{p};
        benchmark::DoNotOptimize(chain.f_rounds());
        benchmark::DoNotOptimize(chain.g_rounds());
    }
}
BENCHMARK(BM_FJChain_HittingTimes)->Arg(20)->Arg(200);

void BM_SharedLanSaturated(benchmark::State& state) {
    sim::Engine engine;
    net::SharedLanConfig cfg;
    cfg.station_queue_packets = 1 << 20;
    net::SharedLan lan{engine, cfg};
    for (int i = 0; i < 4; ++i) {
        lan.attach([](net::Packet) {});
    }
    std::uint64_t seq = 0;
    for (auto _ : state) {
        for (int i = 0; i < 256; ++i) {
            net::Packet p;
            p.size_bytes = 1000;
            p.seq = seq++;
            lan.send(static_cast<int>(seq % 4), p);
        }
        engine.run();
        benchmark::DoNotOptimize(lan.stats().frames_delivered);
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_SharedLanSaturated);

void BM_DvFullMeshSimSecond(benchmark::State& state) {
    sim::Engine engine;
    net::Network nw{engine};
    const int n = 6;
    std::vector<net::Router*> routers;
    for (int i = 0; i < n; ++i) {
        routers.push_back(&nw.add_router("r" + std::to_string(i)));
    }
    for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) {
            nw.connect(*routers[static_cast<std::size_t>(i)],
                       *routers[static_cast<std::size_t>(j)]);
        }
    }
    nw.install_static_routes();
    routing::DvConfig dv;
    dv.period = sim::SimTime::seconds(20);
    dv.jitter = sim::SimTime::seconds(1);
    dv.filler_routes = 300;
    std::vector<std::unique_ptr<routing::DistanceVectorAgent>> agents;
    for (int i = 0; i < n; ++i) {
        routing::DvConfig c = dv;
        c.seed = static_cast<std::uint64_t>(i) + 1;
        agents.push_back(
            std::make_unique<routing::DistanceVectorAgent>(*routers[static_cast<std::size_t>(i)], c));
        agents.back()->start(sim::SimTime::seconds(0.1 * i));
    }
    double horizon = 0.0;
    for (auto _ : state) {
        horizon += 1000.0;
        engine.run_until(sim::SimTime::seconds(horizon));
        benchmark::DoNotOptimize(engine.events_processed());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_DvFullMeshSimSecond);

} // namespace

BENCHMARK_MAIN();
