// Extension — the paper's footnote 3, quantified:
//
//   "BGP (Border Gateway Protocol), which is also used, only requires
//    routers to send incremental update messages."
//
// The same NEARnet core, same synchronized timers, same blocking route
// processors — but the protocol sends keepalives plus change-only updates
// instead of periodic 300-route full tables. The CPU storm (and with it
// the ~90 s periodic ping loss) disappears, without any timer
// randomization at all. Randomization remains necessary for protocols
// that *do* send periodic full tables — and for everything else the paper
// lists — but incremental protocols dodge this particular failure mode by
// construction.
#include <cstdio>

#include "bench/common.hpp"
#include "scenarios/scenarios.hpp"

using namespace routesync;
using namespace routesync::bench;

namespace {

struct Outcome {
    double loss_pct;
    double r1_cpu_seconds;
    std::uint64_t updates;
};

Outcome run(bool incremental) {
    scenarios::NearnetConfig cfg;
    cfg.incremental_updates = incremental;
    scenarios::NearnetScenario s{cfg};
    apps::PingConfig pc;
    pc.dst = s.dst().id();
    pc.count = 800;
    apps::PingApp ping{s.src(), pc};
    ping.start(s.routing_start() + sim::SimTime::seconds(300));
    s.engine().run_until(sim::SimTime::seconds(1400));
    return Outcome{100.0 * ping.loss_fraction(), s.r1().stats().cpu_seconds,
                   s.r1().stats().updates_received};
}

} // namespace

int main(int argc, char** argv) {
    parse_options(argc, argv);
    header("Extension (paper footnote 3)",
           "periodic full tables vs BGP-style incremental updates on the "
           "NEARnet core (synchronized timers, blocking CPUs)");

    section("800 pings through the core, 1100 s");
    std::printf("%-32s %8s %16s %10s\n", "protocol", "loss%", "R1_cpu_seconds",
                "updates");
    const auto full = run(false);
    std::printf("%-32s %8.2f %16.1f %10llu\n", "periodic full tables (IGRP)",
                full.loss_pct, full.r1_cpu_seconds,
                static_cast<unsigned long long>(full.updates));
    const auto incr = run(true);
    std::printf("%-32s %8.2f %16.1f %10llu\n", "incremental (BGP-like)",
                incr.loss_pct, incr.r1_cpu_seconds,
                static_cast<unsigned long long>(incr.updates));

    section("summary");
    std::printf("route-processor load drops %.0fx; the periodic loss bursts "
                "disappear\n",
                full.r1_cpu_seconds / std::max(incr.r1_cpu_seconds, 1e-9));

    check(full.loss_pct >= 2.0,
          "periodic full tables + synchronized timers lose pings in ~90 s "
          "bursts (the Figure 1 condition)");
    check(incr.loss_pct == 0.0,
          "incremental updates eliminate the loss without any randomization");
    check(incr.r1_cpu_seconds < full.r1_cpu_seconds / 10.0,
          "route-processor load falls by more than an order of magnitude");

    return footer();
}
