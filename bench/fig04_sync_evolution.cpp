// Figure 4 — "A simulation showing synchronized routing messages":
// N = 20 routers, Tp = 121 s, Tc = 0.11 s, Tr = 0.1 s, initially
// unsynchronized. Each transmitted routing message is plotted as
// (time, time mod (Tp + Tc)); the jittery horizontal lines of lone
// routers merge into the steep line of the growing cluster until all 20
// transmit in lockstep.
#include <cstdio>
#include <fstream>

#include "bench/common.hpp"
#include "core/core.hpp"
#include "core/trace_replay.hpp"

using namespace routesync;
using namespace routesync::bench;

int main(int argc, char** argv) {
    OptionsSpec spec;
    spec.description = "Figure 4: time-offset of every routing message";
    // --clusters-out FILE: the live cluster-size series ("time size" per
    // line) — the reference routesync trace replay-check --expect diffs.
    spec.extra = {"clusters-out"};
    Options& options = parse_options(argc, argv, spec);
    header("Figure 4",
           "time-offset of every routing message; unsynchronized start, N=20, "
           "Tp=121 s, Tc=0.11 s, Tr=0.1 s");

    core::ExperimentConfig cfg;
    cfg.params.n = 20;
    cfg.params.tp = sim::SimTime::seconds(121);
    cfg.params.tc = sim::SimTime::seconds(0.11);
    cfg.params.tr = sim::SimTime::seconds(0.1);
    cfg.params.seed = options.seed_or(42);
    cfg.max_time = sim::SimTime::seconds(1e5);
    cfg.transmit_stride = 7; // ~2400 of ~16500 points, enough to see the lines
    cfg.record_rounds = true;
    cfg.obs = &options.ctx; // timer/transmit/cluster events land in --trace
    cfg.sample_every = options.sample_every;
    cfg.monitor = options.monitor;
    if (options.sample_every > 0.0) {
        options.ctx.manifest().set_config("sample_every_sec", options.sample_every);
    }
    if (options.monitor) {
        options.ctx.manifest().set_config("monitor", true);
        options.ctx.manifest().set_config("sync_threshold", cfg.sync_threshold);
        options.ctx.manifest().set_config("sync_hysteresis", cfg.sync_hysteresis);
    }
    options.ctx.manifest().seeds.assign(1, cfg.params.seed);
    options.ctx.manifest().set_config("n", cfg.params.n);
    options.ctx.manifest().set_config("tp_sec", cfg.params.tp.sec());
    options.ctx.manifest().set_config("tc_sec", cfg.params.tc.sec());
    options.ctx.manifest().set_config("tr_sec", cfg.params.tr.sec());
    const auto r = core::run_experiment(cfg);
    options.sim_seconds = r.end_time_sec;

    if (const auto it = options.extra.find("clusters-out");
        it != options.extra.end()) {
        // first_hit_up[s] is exactly the series the live ClusterTracker's
        // on_size_first_reached callback produced (groups grow one member
        // at a time, so sizes are first reached in increasing order).
        std::vector<core::ClusterEvent> series;
        for (int s = 1; s <= cfg.params.n; ++s) {
            const auto& t = r.first_hit_up[static_cast<std::size_t>(s)];
            if (t.has_value()) {
                series.push_back(
                    core::ClusterEvent{sim::SimTime::seconds(*t), s});
            }
        }
        std::ofstream f{it->second};
        if (!f) {
            std::fprintf(stderr, "error: cannot open %s\n", it->second.c_str());
            return 1;
        }
        f << core::format_cluster_series(series);
    }

    section("series: time (s) vs node vs offset = time mod (Tp+Tc) (s)");
    std::printf("%10s %5s %10s\n", "time_s", "node", "offset_s");
    for (const auto& t : r.transmits) {
        std::printf("%10.1f %5d %10.3f\n", t.time_sec, t.node, t.offset_sec);
    }

    section("summary");
    std::printf("rounds simulated        : %llu\n",
                static_cast<unsigned long long>(r.rounds_closed));
    std::printf("routing messages sent   : %llu\n",
                static_cast<unsigned long long>(r.total_transmissions));
    std::printf("full synchronization at : %s s (paper's run: 826 rounds ~ 1e5 s)\n",
                r.full_sync_time_sec ? fmt_time(*r.full_sync_time_sec).c_str()
                                     : "not reached");

    if (r.sync.has_value()) {
        section("synchronization observatory (--monitor)");
        std::printf("order parameter r(end)  : %.6f (max %.6f)\n",
                    r.sync->r_last, r.sync->r_max);
        std::printf("time to sync (r >= %.2f): %s s after %llu transitions\n",
                    cfg.sync_threshold,
                    r.sync->time_to_sync_sec >= 0.0
                        ? fmt_time(r.sync->time_to_sync_sec).c_str()
                        : "never",
                    static_cast<unsigned long long>(r.sync->transitions));
        std::printf("cluster entropy (last)  : %.6f, largest fraction %.3f\n",
                    r.sync->entropy_last, r.sync->largest_fraction_last);
        std::printf("coupling graph          : %zu edges, total weight %llu\n",
                    r.sync_coupling.edge_count(),
                    static_cast<unsigned long long>(
                        r.sync_coupling.total_weight()));
        check(r.sync_coupling.total_weight() == r.sync->rearms,
              "coupling edge weights account for every observed re-arm");
    }

    check(r.full_sync_time_sec.has_value(),
          "initially-unsynchronized system reaches full synchronization");
    if (r.full_sync_time_sec) {
        check(*r.full_sync_time_sec < 1e5,
              "synchronization completes within the figure's 1e5 s window");
    }
    // After sync, every remaining round stays fully clustered.
    bool stays = true;
    bool seen_sync = false;
    for (const auto& round : r.rounds) {
        if (round.largest == 20) {
            seen_sync = true;
        } else if (seen_sync) {
            stays = false;
        }
    }
    check(stays, "once formed, the N=20 cluster persists (Tr < breakup threshold)");

    return footer();
}
