// Ablations of the Periodic Messages model's assumptions (DESIGN.md):
//
//  A. *Immediate notification.* Section 4 assumes every router starts
//     processing an update the instant the sender's timer expires
//     (multi-packet updates streaming over the Tc window). Flipping this
//     to single-packet-at-the-end ("AfterPreparation") removes the exact
//     shared busy-period arithmetic — and with it, hard synchronization.
//     This is why implementations that pace a large update across its
//     processing window couple much more strongly than ones that emit one
//     datagram at the end.
//
//  B. *Cluster-detection tolerance.* Cluster membership is detected by
//     grouping timer-set events within a tolerance; the results must not
//     depend on its exact value across many orders of magnitude.
#include <cstdio>

#include "bench/common.hpp"
#include "core/core.hpp"
#include "stats/stats.hpp"

using namespace routesync;
using namespace routesync::bench;

namespace {

core::ExperimentConfig canonical() {
    core::ExperimentConfig cfg;
    cfg.params.n = 20;
    cfg.params.tp = sim::SimTime::seconds(121);
    cfg.params.tc = sim::SimTime::seconds(0.11);
    cfg.params.tr = sim::SimTime::seconds(0.1);
    cfg.params.seed = 42;
    cfg.max_time = sim::SimTime::seconds(1e6);
    cfg.stop_on_full_sync = true;
    return cfg;
}

} // namespace

int main() {
    header("Ablation", "model assumptions: notification timing and detection "
                       "tolerance");

    section("A. notification timing (canonical parameters, 1e6 s horizon)");
    {
        auto cfg = canonical();
        const auto immediate = core::run_experiment(cfg);
        cfg.params.notification = core::Notification::AfterPreparation;
        cfg.stop_on_full_sync = false;
        cfg.record_rounds = true;
        const auto delayed = core::run_experiment(cfg);

        int max_cluster = 0;
        for (const auto& round : delayed.rounds) {
            max_cluster = std::max(max_cluster, round.largest);
        }
        std::printf("immediate notification : full sync at %s s\n",
                    immediate.full_sync_time_sec
                        ? fmt_time(*immediate.full_sync_time_sec).c_str()
                        : "never");
        std::printf("after preparation      : full sync %s; largest exact "
                    "cluster ever: %d of 20\n",
                    delayed.full_sync_time_sec ? "REACHED (unexpected)" : "never",
                    max_cluster);

        check(immediate.full_sync_time_sec.has_value(),
              "with the paper's immediate-notification assumption the system "
              "synchronizes");
        check(!delayed.full_sync_time_sec.has_value() && max_cluster <= 6,
              "single-packet-at-end updates never reach hard synchronization "
              "(the streaming assumption is load-bearing)");
    }

    section("B. cluster-detection tolerance sweep (same run, Figure 4 config)");
    {
        std::printf("%14s %16s\n", "tolerance_s", "full_sync_at_s");
        double reference = -1.0;
        bool all_agree = true;
        for (const double tol : {1e-9, 1e-7, 1e-6, 1e-4, 1e-3}) {
            sim::Engine engine;
            auto cfg = canonical();
            core::PeriodicMessagesModel model{engine, cfg.params};
            core::ClusterTracker tracker{cfg.params.n, model.round_length(),
                                         sim::SimTime::seconds(tol)};
            model.on_timer_set = [&](int node, sim::SimTime t) {
                tracker.on_timer_set(node, t);
            };
            tracker.on_full_sync = [&](sim::SimTime) { engine.stop(); };
            engine.run_until(cfg.max_time);
            tracker.finish();
            const auto sync = tracker.full_sync_time();
            const double at = sync ? sync->sec() : -1.0;
            std::printf("%14.0e %16.1f\n", tol, at);
            if (reference < 0) {
                reference = at;
            } else if (std::fabs(at - reference) > 1.0) {
                all_agree = false;
            }
        }
        check(all_agree && reference > 0,
              "the detected synchronization time is identical across six "
              "orders of magnitude of tolerance");
    }

    return footer();
}
