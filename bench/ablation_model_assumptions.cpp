// Ablations of the Periodic Messages model's assumptions (DESIGN.md):
//
//  A. *Immediate notification.* Section 4 assumes every router starts
//     processing an update the instant the sender's timer expires
//     (multi-packet updates streaming over the Tc window). Flipping this
//     to single-packet-at-the-end ("AfterPreparation") removes the exact
//     shared busy-period arithmetic — and with it, hard synchronization.
//     This is why implementations that pace a large update across its
//     processing window couple much more strongly than ones that emit one
//     datagram at the end.
//
//  B. *Cluster-detection tolerance.* Cluster membership is detected by
//     grouping timer-set events within a tolerance; the results must not
//     depend on its exact value across many orders of magnitude.
#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "bench/common.hpp"
#include "core/core.hpp"
#include "parallel/parallel.hpp"
#include "stats/stats.hpp"

using namespace routesync;
using namespace routesync::bench;

namespace {

core::ExperimentConfig canonical() {
    core::ExperimentConfig cfg;
    cfg.params.n = 20;
    cfg.params.tp = sim::SimTime::seconds(121);
    cfg.params.tc = sim::SimTime::seconds(0.11);
    cfg.params.tr = sim::SimTime::seconds(0.1);
    cfg.params.seed = 42;
    cfg.max_time = sim::SimTime::seconds(1e6);
    cfg.stop_on_full_sync = true;
    return cfg;
}

struct NotificationOutcome {
    std::optional<double> full_sync_time_sec;
    int max_cluster = 0;
};

NotificationOutcome run_notification(bool immediate) {
    auto cfg = canonical();
    if (!immediate) {
        cfg.params.notification = core::Notification::AfterPreparation;
        cfg.stop_on_full_sync = false;
        cfg.record_rounds = true;
    }
    const auto r = core::run_experiment(cfg);
    NotificationOutcome out;
    out.full_sync_time_sec = r.full_sync_time_sec;
    for (const auto& round : r.rounds) {
        out.max_cluster = std::max(out.max_cluster, round.largest);
    }
    return out;
}

/// One detection-tolerance run of section B; returns the detected full-sync
/// instant (or -1 if never).
double run_tolerance(double tol) {
    sim::Engine engine;
    auto cfg = canonical();
    core::PeriodicMessagesModel model{engine, cfg.params};
    // Pooled per worker thread, like the experiment driver's tracker:
    // reset() reuses the per-size tables across the tolerance sweep
    // instead of reallocating them for every point.
    thread_local std::unique_ptr<core::ClusterTracker> tracker_pool;
    if (tracker_pool == nullptr) {
        tracker_pool = std::make_unique<core::ClusterTracker>(
            cfg.params.n, model.round_length(), sim::SimTime::seconds(tol));
    } else {
        tracker_pool->reset(cfg.params.n, model.round_length(),
                            sim::SimTime::seconds(tol));
    }
    core::ClusterTracker& tracker = *tracker_pool;
    model.on_timer_set = [&](int node, sim::SimTime t) {
        tracker.on_timer_set(node, t);
    };
    tracker.on_full_sync = [&](sim::SimTime) { engine.stop(); };
    engine.run_until(cfg.max_time);
    tracker.finish();
    const auto sync = tracker.full_sync_time();
    return sync ? sync->sec() : -1.0;
}

} // namespace

int main(int argc, char** argv) {
    const std::size_t jobs = parse_options(argc, argv).jobs;
    header("Ablation", "model assumptions: notification timing and detection "
                       "tolerance");

    section("A. notification timing (canonical parameters, 1e6 s horizon)");
    {
        // The immediate- and delayed-notification experiments are
        // independent; fan them over the workers and print in fixed order.
        const std::vector<NotificationOutcome> outcomes =
            parallel::map_index<NotificationOutcome>(
                2, jobs, [](std::size_t i) { return run_notification(i == 0); });
        const NotificationOutcome& immediate = outcomes[0];
        const NotificationOutcome& delayed = outcomes[1];
        const int max_cluster = delayed.max_cluster;
        std::printf("immediate notification : full sync at %s s\n",
                    immediate.full_sync_time_sec
                        ? fmt_time(*immediate.full_sync_time_sec).c_str()
                        : "never");
        std::printf("after preparation      : full sync %s; largest exact "
                    "cluster ever: %d of 20\n",
                    delayed.full_sync_time_sec ? "REACHED (unexpected)" : "never",
                    max_cluster);

        check(immediate.full_sync_time_sec.has_value(),
              "with the paper's immediate-notification assumption the system "
              "synchronizes");
        check(!delayed.full_sync_time_sec.has_value() && max_cluster <= 6,
              "single-packet-at-end updates never reach hard synchronization "
              "(the streaming assumption is load-bearing)");
    }

    section("B. cluster-detection tolerance sweep (same run, Figure 4 config)");
    {
        std::printf("%14s %16s\n", "tolerance_s", "full_sync_at_s");
        const std::vector<double> tols{1e-9, 1e-7, 1e-6, 1e-4, 1e-3};
        // Each tolerance gets its own engine and model, so the sweep fans
        // over the workers; rows print in tolerance order.
        const std::vector<double> sync_times = parallel::map_index<double>(
            tols.size(), jobs, [&](std::size_t i) { return run_tolerance(tols[i]); });
        double reference = -1.0;
        bool all_agree = true;
        for (std::size_t i = 0; i < tols.size(); ++i) {
            const double at = sync_times[i];
            std::printf("%14.0e %16.1f\n", tols[i], at);
            if (reference < 0) {
                reference = at;
            } else if (std::fabs(at - reference) > 1.0) {
                all_agree = false;
            }
        }
        check(all_agree && reference > 0,
              "the detected synchronization time is identical across six "
              "orders of magnitude of tolerance");
    }

    return footer();
}
