// Extension — mixed hardware: what synchronizes when route processors
// differ in speed?
//
// The Periodic Messages model assumes every router takes the same Tc per
// message. Real networks mix fast and slow boxes, and the busy-period
// arithmetic then sorts routers into *classes*: after a joint transmission
// wave, all slow routers finish processing at one instant and all fast
// routers at another. The network does not form one cluster — it forms one
// cluster PER HARDWARE CLASS, and the classes beat against each other
// (their periods differ by the processing-time gap).
//
// Practical consequence: upgrading half the routers does not halve the
// update storm — it creates two storms per period. (We first met this
// effect as a bug in the Figure 3 testbed, where unequal router degree
// split the LAN's cluster; this bench isolates it.)
#include <cstdio>
#include <map>
#include <vector>

#include "bench/common.hpp"
#include "core/core.hpp"
#include "parallel/parallel.hpp"
#include "stats/stats.hpp"

using namespace routesync;
using namespace routesync::bench;

namespace {

struct ClassOutcome {
    double fast_spread = 0.0;
    double slow_spread = 0.0;
    double separation = 0.0;
    /// Final reset instant per node, for the detailed seed's breakdown.
    std::vector<double> last_sets;
};

ClassOutcome run_hetero(std::uint64_t seed) {
    sim::Engine engine;
    core::ModelParams p;
    p.n = 20;
    p.tp = sim::SimTime::seconds(121);
    p.tr = sim::SimTime::seconds(0.05); // below every class's Tc/2
    p.tc = sim::SimTime::seconds(0.11); // overridden per node below
    p.start = core::StartCondition::Synchronized;
    p.seed = seed;
    for (int i = 0; i < 20; ++i) {
        p.per_node_tc.push_back(i < 10 ? 0.11 : 0.33);
    }
    core::PeriodicMessagesModel model{engine, p};

    // Record each node's timer-set times late in the run.
    std::vector<std::vector<double>> sets(20);
    model.on_timer_set = [&](int node, sim::SimTime t) {
        if (t.sec() > 50000) {
            sets[static_cast<std::size_t>(node)].push_back(t.sec());
        }
    };
    engine.run_until(sim::SimTime::seconds(60000));

    ClassOutcome out;
    std::vector<double> fast_resets;
    std::vector<double> slow_resets;
    for (int i = 0; i < 20; ++i) {
        const auto& series = sets[static_cast<std::size_t>(i)];
        if (series.empty()) {
            continue;
        }
        out.last_sets.push_back(series.back());
        (i < 10 ? fast_resets : slow_resets).push_back(series.back());
    }
    auto spread = [](const std::vector<double>& xs) {
        double lo = xs.front();
        double hi = xs.front();
        for (const double x : xs) {
            lo = std::min(lo, x);
            hi = std::max(hi, x);
        }
        return hi - lo;
    };
    out.fast_spread = spread(fast_resets);
    out.slow_spread = spread(slow_resets);
    out.separation = std::fabs(fast_resets.front() - slow_resets.front());
    return out;
}

} // namespace

int main(int argc, char** argv) {
    Options& options = parse_options(
        argc, argv, "heterogeneous route processors: per-class synchronization");
    const std::size_t jobs = options.jobs;
    options.sim_seconds = 60000.0;
    header("Extension",
           "heterogeneous route processors: per-class synchronization "
           "(10 fast nodes Tc=0.11 s, 10 slow nodes Tc=0.33 s, sync start)");

    // Seed 77 is the detailed run the shape checks below examine; the
    // rest confirm the class split is not a quirk of one RNG stream. All
    // trials are independent, so they fan over the workers.
    const std::vector<std::uint64_t> seeds{77, 177, 1077, 2077, 3077};
    const std::vector<ClassOutcome> outcomes = parallel::map_index<ClassOutcome>(
        seeds.size(), jobs, [&](std::size_t i) { return run_hetero(seeds[i]); });
    const ClassOutcome& detail = outcomes[0];

    section("final-round reset times by node class (seed 77)");
    std::map<long long, int> groups; // quantized to ms
    for (const double t : detail.last_sets) {
        groups[static_cast<long long>(t * 1000.0)]++;
    }
    if (FILE* f = chatter()) {
        for (const auto& [t_ms, count] : groups) {
            std::fprintf(f, "reset at %.3f s : %d nodes\n",
                         static_cast<double>(t_ms) / 1000.0, count);
        }
    }

    section("summary (seed 77)");
    if (FILE* f = chatter()) {
        std::fprintf(f, "fast-class spread  : %.4f s\n", detail.fast_spread);
        std::fprintf(f, "slow-class spread  : %.4f s\n", detail.slow_spread);
        std::fprintf(f, "class separation   : %.3f s\n", detail.separation);
    }

    section("multi-seed robustness");
    if (FILE* f = chatter()) {
        std::fprintf(f, "%8s %18s %18s %16s\n", "seed", "fast_spread_s",
                     "slow_spread_s", "separation_s");
    }
    int seeds_with_split = 0;
    for (std::size_t i = 0; i < seeds.size(); ++i) {
        const ClassOutcome& out = outcomes[i];
        if (FILE* f = chatter()) {
            std::fprintf(f, "%8llu %18.4f %18.4f %16.3f\n",
                         static_cast<unsigned long long>(seeds[i]), out.fast_spread,
                         out.slow_spread, out.separation);
        }
        if (options.json) {
            std::printf("{\"seed\": %llu, \"fast_spread_s\": %.4f, "
                        "\"slow_spread_s\": %.4f, \"separation_s\": %.3f}\n",
                        static_cast<unsigned long long>(seeds[i]), out.fast_spread,
                        out.slow_spread, out.separation);
        }
        if (out.fast_spread < 0.5 && out.slow_spread < 0.5 &&
            out.separation > 0.5) {
            ++seeds_with_split;
        }
    }

    check(detail.fast_spread < 0.5 && detail.slow_spread < 0.5,
          "each hardware class stays internally synchronized");
    check(detail.separation > 0.5,
          "the classes do NOT share a cluster: two storms per period, not one");
    check(seeds_with_split == static_cast<int>(seeds.size()),
          "the per-class split reproduces across every seed");

    return footer();
}
