// Extension — mixed hardware: what synchronizes when route processors
// differ in speed?
//
// The Periodic Messages model assumes every router takes the same Tc per
// message. Real networks mix fast and slow boxes, and the busy-period
// arithmetic then sorts routers into *classes*: after a joint transmission
// wave, all slow routers finish processing at one instant and all fast
// routers at another. The network does not form one cluster — it forms one
// cluster PER HARDWARE CLASS, and the classes beat against each other
// (their periods differ by the processing-time gap).
//
// Practical consequence: upgrading half the routers does not halve the
// update storm — it creates two storms per period. (We first met this
// effect as a bug in the Figure 3 testbed, where unequal router degree
// split the LAN's cluster; this bench isolates it.)
#include <cstdio>
#include <map>
#include <vector>

#include "bench/common.hpp"
#include "core/core.hpp"
#include "stats/stats.hpp"

using namespace routesync;
using namespace routesync::bench;

int main() {
    header("Extension",
           "heterogeneous route processors: per-class synchronization "
           "(10 fast nodes Tc=0.11 s, 10 slow nodes Tc=0.33 s, sync start)");

    sim::Engine engine;
    core::ModelParams p;
    p.n = 20;
    p.tp = sim::SimTime::seconds(121);
    p.tr = sim::SimTime::seconds(0.05); // below every class's Tc/2
    p.tc = sim::SimTime::seconds(0.11); // overridden per node below
    p.start = core::StartCondition::Synchronized;
    p.seed = 77;
    for (int i = 0; i < 20; ++i) {
        p.per_node_tc.push_back(i < 10 ? 0.11 : 0.33);
    }
    core::PeriodicMessagesModel model{engine, p};

    // Record each node's timer-set times late in the run.
    std::vector<std::vector<double>> sets(20);
    model.on_timer_set = [&](int node, sim::SimTime t) {
        if (t.sec() > 50000) {
            sets[static_cast<std::size_t>(node)].push_back(t.sec());
        }
    };
    engine.run_until(sim::SimTime::seconds(60000));

    // Group the final timer-set instants.
    std::vector<double> last_sets;
    for (const auto& series : sets) {
        if (!series.empty()) {
            last_sets.push_back(series.back());
        }
    }
    section("final-round reset times by node class");
    std::map<long long, int> groups; // quantized to ms
    for (std::size_t i = 0; i < last_sets.size(); ++i) {
        groups[static_cast<long long>(last_sets[i] * 1000.0)]++;
    }
    for (const auto& [t_ms, count] : groups) {
        std::printf("reset at %.3f s : %d nodes\n",
                    static_cast<double>(t_ms) / 1000.0, count);
    }

    // Fast nodes reset together; slow nodes reset together; the two
    // instants differ (per-class clusters).
    std::vector<double> fast_resets;
    std::vector<double> slow_resets;
    for (int i = 0; i < 20; ++i) {
        const auto& series = sets[static_cast<std::size_t>(i)];
        if (series.empty()) {
            continue;
        }
        (i < 10 ? fast_resets : slow_resets).push_back(series.back());
    }
    auto spread = [](const std::vector<double>& xs) {
        double lo = xs.front();
        double hi = xs.front();
        for (const double x : xs) {
            lo = std::min(lo, x);
            hi = std::max(hi, x);
        }
        return hi - lo;
    };

    section("summary");
    std::printf("fast-class spread  : %.4f s\n", spread(fast_resets));
    std::printf("slow-class spread  : %.4f s\n", spread(slow_resets));
    std::printf("class separation   : %.3f s\n",
                std::fabs(fast_resets.front() - slow_resets.front()));

    check(spread(fast_resets) < 0.5 && spread(slow_resets) < 0.5,
          "each hardware class stays internally synchronized");
    check(std::fabs(fast_resets.front() - slow_resets.front()) > 0.5,
          "the classes do NOT share a cluster: two storms per period, not one");

    return footer();
}
