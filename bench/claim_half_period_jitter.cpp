// Section 6 claim — "setting the timer each round to a time from the
// uniform distribution on the interval [0.5*Tp, 1.5*Tp] seconds would be
// a simple way to avoid synchronized routing messages."
//
// Three policies from a worst-case synchronized start:
//   * half-period jitter  — breaks up within a few rounds, never re-locks;
//   * small jitter        — never breaks (the failure mode);
//   * reset-at-expiry     — the RFC 1058 alternative: keeps whatever
//                           synchronization it starts with (the drawback
//                           the paper calls out).
#include <cstdio>
#include <memory>

#include "bench/common.hpp"
#include "core/core.hpp"

using namespace routesync;
using namespace routesync::bench;

namespace {

core::ExperimentConfig base_config() {
    core::ExperimentConfig cfg;
    cfg.params.n = 20;
    cfg.params.tp = sim::SimTime::seconds(121);
    cfg.params.tc = sim::SimTime::seconds(0.11);
    cfg.params.start = core::StartCondition::Synchronized;
    cfg.params.seed = 77;
    cfg.max_time = sim::SimTime::seconds(1e6);
    cfg.record_rounds = true;
    return cfg;
}

} // namespace

int main(int argc, char** argv) {
    parse_options(argc, argv);
    header("Section 6 claim",
           "uniform [0.5*Tp, 1.5*Tp] timers eliminate synchronization "
           "(synchronized start, N=20, Tc=0.11 s, 1e6 s horizon)");

    section("half-period jitter");
    auto cfg = base_config();
    cfg.stop_on_breakup_threshold = 0;
    cfg.make_policy = [] {
        return std::make_unique<core::HalfPeriodJitter>(sim::SimTime::seconds(121));
    };
    const auto half = core::run_experiment(cfg);
    std::uint64_t relocked = 0;
    for (const auto& round : half.rounds) {
        if (round.largest >= 5) {
            ++relocked;
        }
    }
    const double unsync_frac =
        static_cast<double>(half.rounds_unsynchronized) /
        static_cast<double>(half.rounds_closed);
    double breakup = -1.0;
    if (half.first_hit_down[1]) {
        breakup = *half.first_hit_down[1];
    }
    std::printf("breakup (largest cluster 1) after : %.0f s (~%.0f rounds)\n",
                breakup, breakup / half.round_length_sec);
    std::printf("rounds fully unsynchronized       : %.1f%%\n", 100 * unsync_frac);
    std::printf("rounds with any cluster >= 5      : %llu of %llu\n",
                static_cast<unsigned long long>(relocked),
                static_cast<unsigned long long>(half.rounds_closed));

    check(breakup > 0 && breakup < 3000,
          "half-period jitter dissolves full synchronization within a few rounds");
    check(unsync_frac > 0.5 &&
              static_cast<double>(relocked) <
                  0.005 * static_cast<double>(half.rounds_closed),
          "and the system never drifts back towards synchronization "
          "(clusters of >= 5 in <0.5% of rounds)");

    section("small jitter (Tr = 0.05 s < Tc/2): the failure mode");
    auto small = base_config();
    small.params.tr = sim::SimTime::seconds(0.05);
    const auto locked = core::run_experiment(small);
    bool always_locked = true;
    for (const auto& round : locked.rounds) {
        if (round.largest != 20) {
            always_locked = false;
        }
    }
    std::printf("every round fully synchronized: %s\n", always_locked ? "yes" : "no");
    check(always_locked, "below the Tc/2 threshold synchronization is permanent");

    section("reset-at-expiry (RFC 1058 alternative)");
    auto rfc = base_config();
    rfc.params.tr = sim::SimTime::zero();
    rfc.params.reset_at_expiry = true;
    const auto frozen = core::run_experiment(rfc);
    bool stays_locked = true;
    for (const auto& round : frozen.rounds) {
        if (round.largest != 20) {
            stays_locked = false;
        }
    }
    std::printf("initially-synchronized network stays synchronized: %s\n",
                stays_locked ? "yes" : "no");
    check(stays_locked,
          "the free-running clock has no mechanism to break up existing "
          "synchronization (the paper's stated drawback)");

    return footer();
}
