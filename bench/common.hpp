// Shared options + output helpers for the figure-reproduction benches.
//
// Every bench prints:
//   * a header naming the paper figure it regenerates,
//   * the same series/rows the paper plots (machine-greppable columns),
//   * SHAPE-CHECK lines asserting the qualitative result the paper reports
//     (who wins, the period, the transition) — PASS/FAIL.
//
// Every bench binary accepts the same command line, parsed once by
// parse_options():
//
//   --jobs N      worker threads for parallel sweeps; 0 or a bare --jobs
//                 auto-detects the hardware concurrency (also the default)
//   --seed S      override the bench's base seed
//   --json        machine-readable rows on stdout; human chatter -> stderr
//   --quiet       suppress human chatter entirely (checks still counted)
//   --trace FILE  write a JSONL trace of the run's events (obs layer)
//   --out FILE    write a run manifest (manifest.json) on exit
//   --sample-every SEC  run the ResourceSampler at this sim-time cadence
//                 (benches forward opts().sample_every to their configs)
//   --profile     wall-clock self-profiler: per-label count/total/max in
//                 the manifest's "profile" section + a table on exit
//
// Bench-specific flags are whitelisted through OptionsSpec::extra;
// anything else is a usage error (exit 2). The returned Options owns the
// bench's obs::RunContext — pass &opts().ctx to scenario builders or
// ExperimentConfig::obs to trace, and footer() seals the manifest.
//
// Output discipline: with no flags, stdout is byte-identical to the
// pre-options benches (figures are diffed across runs and --jobs values).
#pragma once

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/run_context.hpp"
#include "parallel/parallel_for.hpp"
#include "tools/flags.hpp"

namespace routesync::bench {

inline int g_failed_checks = 0;

struct Options {
    std::size_t jobs = parallel::hardware_jobs();
    /// Trials per batched-kernel claim in parallel sweeps (0 = auto-tune
    /// from the sweep shape; 1 = scalar per-trial execution). Forwarded
    /// to SweepSchedulerOptions::batch; pure performance, never results.
    std::size_t batch = 0;
    std::uint64_t seed = 0;
    bool seed_set = false;
    bool json = false;
    bool quiet = false;
    std::string trace; ///< JSONL trace path ("" = tracing off)
    std::string out;   ///< manifest path ("" = no manifest)
    /// ResourceSampler cadence in sim seconds (0 = sampling off). Benches
    /// forward this to ExperimentConfig::sample_every / scenario configs.
    double sample_every = 0.0;
    bool profile = false; ///< wall-clock self-profiler on
    /// Synchronization observatory (obs/sync_monitor.hpp): benches
    /// forward this to ExperimentConfig::monitor / scenario configs.
    /// Off by default with nil overhead.
    bool monitor = false;
    /// Values of the OptionsSpec::extra flags that were present.
    cli::Flags extra;
    /// Unrecognised argv tokens, in order — only populated under
    /// OptionsSpec::allow_unknown (perf_microbench forwards these to
    /// google-benchmark).
    std::vector<std::string> passthrough;
    /// Simulated seconds covered by the run; benches set this before
    /// footer() so the manifest can record it.
    double sim_seconds = 0.0;
    /// The bench's observability context: tracing is wired here by
    /// parse_options (--trace), metrics and manifest accumulate here.
    obs::RunContext ctx;

    [[nodiscard]] std::uint64_t seed_or(std::uint64_t fallback) const noexcept {
        return seed_set ? seed : fallback;
    }
};

/// The process-wide options instance parse_options() fills.
inline Options& opts() {
    static Options options;
    return options;
}

struct OptionsSpec {
    /// Additional flag names this bench accepts (values land in
    /// Options::extra; a flag without a value stores "1").
    std::vector<std::string> extra;
    /// Forward unrecognised tokens via Options::passthrough instead of
    /// failing (for binaries wrapping another flag-parsing library).
    bool allow_unknown = false;
    /// Manifest identity; defaults to argv[0]'s basename.
    std::string tool;
    std::string description;
};

namespace detail {

[[noreturn]] inline void usage(const char* argv0, const OptionsSpec& spec) {
    std::fprintf(stderr,
                 "usage: %s [--jobs N] [--batch N] [--seed S] [--json] [--quiet]"
                 " [--trace FILE] [--out FILE] [--sample-every SEC] [--profile]"
                 " [--monitor]",
                 argv0);
    for (const std::string& name : spec.extra) {
        std::fprintf(stderr, " [--%s V]", name.c_str());
    }
    std::fprintf(stderr, "\n");
    std::exit(2);
}

inline std::string basename_of(const char* argv0) {
    const std::string path = argv0 != nullptr ? argv0 : "bench";
    const auto slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

} // namespace detail

/// Parses the unified bench command line into opts(). Call once, first
/// thing in main(). Exits with a usage message on malformed input.
inline Options& parse_options(int argc, char** argv, const OptionsSpec& spec = {}) {
    Options& o = opts();
    const auto is_extra = [&spec](const std::string& name) {
        for (const std::string& e : spec.extra) {
            if (e == name) {
                return true;
            }
        }
        return false;
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            if (spec.allow_unknown) {
                o.passthrough.push_back(std::move(arg));
                continue;
            }
            detail::usage(argv[0], spec);
        }
        std::string name = arg.substr(2);
        std::string value;
        bool has_value = false;
        if (const auto eq = name.find('='); eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_value = true;
        }
        const bool is_bool = name == "json" || name == "quiet" ||
                             name == "profile" || name == "monitor";
        const bool is_known = is_bool || name == "jobs" || name == "batch" ||
                              name == "seed" || name == "trace" ||
                              name == "out" || name == "sample-every" ||
                              is_extra(name);
        if (!is_known) {
            if (spec.allow_unknown) {
                o.passthrough.push_back(std::move(arg));
                continue;
            }
            detail::usage(argv[0], spec);
        }
        if (!has_value && !is_bool && i + 1 < argc &&
            std::string(argv[i + 1]).rfind("--", 0) != 0) {
            value = argv[++i];
            has_value = true;
        }
        if (name == "json") {
            o.json = true;
        } else if (name == "quiet") {
            o.quiet = true;
        } else if (name == "profile") {
            o.profile = true;
        } else if (name == "monitor") {
            o.monitor = true;
        } else if (name == "sample-every") {
            char* end = nullptr;
            const double sec = std::strtod(value.c_str(), &end);
            if (!has_value || end == value.c_str() || *end != '\0' ||
                !(sec > 0.0) || std::isinf(sec)) {
                std::fprintf(stderr,
                             "error: --sample-every must be a positive number of"
                             " seconds, got '%s'\n",
                             value.c_str());
                std::exit(2);
            }
            o.sample_every = sec;
        } else if (name == "jobs") {
            if (!has_value) {
                // Bare --jobs: auto-detect, same as the default.
                o.jobs = parallel::hardware_jobs();
                continue;
            }
            char* end = nullptr;
            const long n = std::strtol(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0' || n < 0) {
                std::fprintf(stderr,
                             "error: --jobs must be a non-negative integer"
                             " (0 = auto-detect), got '%s'\n",
                             value.c_str());
                std::exit(2);
            }
            // 0 = auto-detect the hardware concurrency.
            o.jobs = n == 0 ? parallel::hardware_jobs()
                            : static_cast<std::size_t>(n);
        } else if (name == "batch") {
            if (!has_value) {
                // Bare --batch: auto-tune, same as the default.
                o.batch = 0;
                continue;
            }
            char* end = nullptr;
            const long n = std::strtol(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0' || n < 0) {
                std::fprintf(stderr,
                             "error: --batch must be a non-negative integer"
                             " (0 = auto), got '%s'\n",
                             value.c_str());
                std::exit(2);
            }
            o.batch = static_cast<std::size_t>(n);
        } else if (name == "seed") {
            char* end = nullptr;
            const unsigned long long s = std::strtoull(value.c_str(), &end, 10);
            if (!has_value || end == value.c_str() || *end != '\0') {
                std::fprintf(stderr, "error: --seed must be an integer, got '%s'\n",
                             value.c_str());
                std::exit(2);
            }
            o.seed = s;
            o.seed_set = true;
        } else if (name == "trace") {
            if (!has_value || value.empty()) {
                std::fprintf(stderr, "error: --trace requires a file path\n");
                std::exit(2);
            }
            o.trace = value;
        } else if (name == "out") {
            if (!has_value || value.empty()) {
                std::fprintf(stderr, "error: --out requires a file path\n");
                std::exit(2);
            }
            o.out = value;
        } else {
            o.extra[name] = has_value ? value : "1";
        }
    }
    if (!o.trace.empty()) {
        o.ctx.trace_to_file(o.trace);
    }
    if (o.profile) {
        o.ctx.enable_profiling();
    }
    obs::Manifest& m = o.ctx.manifest();
    m.tool = !spec.tool.empty() ? spec.tool : detail::basename_of(argv[0]);
    m.description = spec.description;
    m.jobs = o.jobs;
    if (o.seed_set) {
        m.seeds.push_back(o.seed);
    }
    return o;
}

/// Convenience overload for benches with no extra flags: just a manifest
/// description.
inline Options& parse_options(int argc, char** argv, const std::string& description) {
    OptionsSpec spec;
    spec.description = description;
    return parse_options(argc, argv, spec);
}

/// Stream for human-facing output: stdout normally, stderr under --json
/// (stdout then carries machine rows only), null under --quiet.
inline FILE* chatter() {
    const Options& o = opts();
    if (o.quiet) {
        return nullptr;
    }
    return o.json ? stderr : stdout;
}

inline void header(const std::string& figure, const std::string& description) {
    if (FILE* f = chatter()) {
        std::fprintf(f, "==============================================================\n");
        std::fprintf(f, "%s — %s\n", figure.c_str(), description.c_str());
        std::fprintf(f, "==============================================================\n");
    }
}

inline void section(const std::string& name) {
    if (FILE* f = chatter()) {
        std::fprintf(f, "\n-- %s --\n", name.c_str());
    }
}

inline void check(bool ok, const std::string& what) {
    if (FILE* f = chatter()) {
        std::fprintf(f, "SHAPE-CHECK %-4s %s\n", ok ? "PASS" : "FAIL", what.c_str());
    }
    if (!ok) {
        ++g_failed_checks;
    }
}

/// Render a number that may be +infinity (diverging hitting time).
inline std::string fmt_time(double seconds) {
    if (std::isinf(seconds)) {
        return ">1e15 (divergent)";
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", seconds);
    return buf;
}

namespace detail {

/// Scans `text` from `pos` (which must point at the opening quote of a
/// JSON string) past the closing quote, honouring backslash escapes.
/// Returns npos on malformed input.
inline std::size_t skip_json_string(const std::string& text, std::size_t pos) {
    for (++pos; pos < text.size(); ++pos) {
        if (text[pos] == '\\') {
            ++pos;
        } else if (text[pos] == '"') {
            return pos + 1;
        }
    }
    return std::string::npos;
}

/// Scans one JSON value starting at `pos` (object, array, string, number,
/// or literal) and returns the index one past its end. Returns npos on
/// malformed input. Good enough for files this repo writes itself.
inline std::size_t skip_json_value(const std::string& text, std::size_t pos) {
    if (pos >= text.size()) {
        return std::string::npos;
    }
    if (text[pos] == '"') {
        return skip_json_string(text, pos);
    }
    if (text[pos] == '{' || text[pos] == '[') {
        int depth = 0;
        for (; pos < text.size(); ++pos) {
            const char c = text[pos];
            if (c == '"') {
                pos = skip_json_string(text, pos);
                if (pos == std::string::npos) {
                    return std::string::npos;
                }
                --pos; // loop increment lands on the next char
            } else if (c == '{' || c == '[') {
                ++depth;
            } else if (c == '}' || c == ']') {
                if (--depth == 0) {
                    return pos + 1;
                }
            }
        }
        return std::string::npos;
    }
    // Number / true / false / null: runs until a delimiter.
    while (pos < text.size() && text[pos] != ',' && text[pos] != '}' &&
           text[pos] != ']' && !std::isspace(static_cast<unsigned char>(text[pos]))) {
        ++pos;
    }
    return pos;
}

/// Parses the top-level `"key": value` pairs of a JSON object into raw
/// (key, value-text) pairs, preserving order. Returns false on anything
/// that does not parse as a flat object of sections.
inline bool read_json_sections(
    const std::string& text,
    std::vector<std::pair<std::string, std::string>>& sections) {
    const auto ws = [&text](std::size_t p) {
        while (p < text.size() && std::isspace(static_cast<unsigned char>(text[p]))) {
            ++p;
        }
        return p;
    };
    std::size_t pos = ws(0);
    if (pos >= text.size() || text[pos] != '{') {
        return false;
    }
    pos = ws(pos + 1);
    if (pos < text.size() && text[pos] == '}') {
        return true; // empty object
    }
    while (pos < text.size()) {
        if (text[pos] != '"') {
            return false;
        }
        const std::size_t key_end = skip_json_string(text, pos);
        if (key_end == std::string::npos) {
            return false;
        }
        std::string key = text.substr(pos + 1, key_end - pos - 2);
        pos = ws(key_end);
        if (pos >= text.size() || text[pos] != ':') {
            return false;
        }
        pos = ws(pos + 1);
        const std::size_t value_end = skip_json_value(text, pos);
        if (value_end == std::string::npos) {
            return false;
        }
        sections.emplace_back(std::move(key), text.substr(pos, value_end - pos));
        pos = ws(value_end);
        if (pos < text.size() && text[pos] == ',') {
            pos = ws(pos + 1);
            continue;
        }
        if (pos < text.size() && text[pos] == '}') {
            return true;
        }
        return false;
    }
    return false;
}

} // namespace detail

/// Read-modify-write one top-level section of a shared JSON report file
/// (BENCH_sweep.json): the file is `{ "section": {...}, ... }`, each
/// bench owns one key, and writing a section preserves every other
/// bench's data. `object_text` must be a complete JSON value (normally
/// an object). Unparseable files — including the pre-section flat format
/// whose first key was "bench" — are discarded and rebuilt with just the
/// new section.
inline void write_json_section(const std::string& path, const std::string& key,
                               const std::string& object_text) {
    std::vector<std::pair<std::string, std::string>> sections;
    if (std::ifstream in{path}; in) {
        std::ostringstream buf;
        buf << in.rdbuf();
        const std::string text = buf.str();
        if (!detail::read_json_sections(text, sections) ||
            (!sections.empty() && sections.front().first == "bench")) {
            sections.clear(); // malformed or legacy flat layout: start over
        }
    }
    bool replaced = false;
    for (auto& [name, value] : sections) {
        if (name == key) {
            value = object_text;
            replaced = true;
            break;
        }
    }
    if (!replaced) {
        sections.emplace_back(key, object_text);
    }
    std::ofstream out{path};
    out << "{\n";
    for (std::size_t i = 0; i < sections.size(); ++i) {
        out << "  \"" << sections[i].first << "\": " << sections[i].second
            << (i + 1 < sections.size() ? ",\n" : "\n");
    }
    out << "}\n";
}

/// footer() without the shape-check summary line — for the examples,
/// which have no checks but still honour --trace/--out.
inline int footer_quiet() {
    Options& o = opts();
    o.ctx.manifest().failed_checks = g_failed_checks;
    if (!o.out.empty()) {
        o.ctx.write_manifest(o.out, o.sim_seconds);
    } else if (!o.trace.empty() || o.profile) {
        // Still flush + hash the trace (and fold the profile into the
        // manifest) so --trace/--profile alone leave a complete record.
        o.ctx.finish(o.sim_seconds);
    }
    if (o.profile) {
        if (FILE* f = chatter()) {
            const auto& prof = o.ctx.manifest().profile;
            std::fprintf(f, "\n-- profile (wall clock) --\n%s",
                         prof.has_value() ? prof->format().c_str()
                                          : "(no scopes recorded)\n");
        }
    }
    return 0; // benches report, they do not abort the bench sweep
}

inline int footer() {
    if (FILE* f = chatter()) {
        std::fprintf(f, "\n%s (%d failed shape checks)\n",
                     g_failed_checks == 0 ? "ALL SHAPE CHECKS PASSED"
                                          : "SHAPE CHECKS FAILED",
                     g_failed_checks);
    }
    return footer_quiet();
}

} // namespace routesync::bench
