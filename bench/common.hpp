// Shared output helpers for the figure-reproduction benches.
//
// Every bench prints:
//   * a header naming the paper figure it regenerates,
//   * the same series/rows the paper plots (machine-greppable columns),
//   * SHAPE-CHECK lines asserting the qualitative result the paper reports
//     (who wins, the period, the transition) — PASS/FAIL.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>

namespace routesync::bench {

inline int g_failed_checks = 0;

inline void header(const std::string& figure, const std::string& description) {
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", figure.c_str(), description.c_str());
    std::printf("==============================================================\n");
}

inline void section(const std::string& name) { std::printf("\n-- %s --\n", name.c_str()); }

inline void check(bool ok, const std::string& what) {
    std::printf("SHAPE-CHECK %-4s %s\n", ok ? "PASS" : "FAIL", what.c_str());
    if (!ok) {
        ++g_failed_checks;
    }
}

/// Render a number that may be +infinity (diverging hitting time).
inline std::string fmt_time(double seconds) {
    if (std::isinf(seconds)) {
        return ">1e15 (divergent)";
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", seconds);
    return buf;
}

inline int footer() {
    std::printf("\n%s (%d failed shape checks)\n",
                g_failed_checks == 0 ? "ALL SHAPE CHECKS PASSED" : "SHAPE CHECKS FAILED",
                g_failed_checks);
    return 0; // benches report, they do not abort the bench sweep
}

} // namespace routesync::bench
