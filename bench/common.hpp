// Shared output helpers for the figure-reproduction benches.
//
// Every bench prints:
//   * a header naming the paper figure it regenerates,
//   * the same series/rows the paper plots (machine-greppable columns),
//   * SHAPE-CHECK lines asserting the qualitative result the paper reports
//     (who wins, the period, the transition) — PASS/FAIL.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "parallel/parallel_for.hpp"

namespace routesync::bench {

inline int g_failed_checks = 0;

inline void header(const std::string& figure, const std::string& description) {
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", figure.c_str(), description.c_str());
    std::printf("==============================================================\n");
}

inline void section(const std::string& name) { std::printf("\n-- %s --\n", name.c_str()); }

inline void check(bool ok, const std::string& what) {
    std::printf("SHAPE-CHECK %-4s %s\n", ok ? "PASS" : "FAIL", what.c_str());
    if (!ok) {
        ++g_failed_checks;
    }
}

/// Render a number that may be +infinity (diverging hitting time).
inline std::string fmt_time(double seconds) {
    if (std::isinf(seconds)) {
        return ">1e15 (divergent)";
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", seconds);
    return buf;
}

/// Parses the standard sweep-bench command line: `[--jobs N]`. Returns
/// the worker count for the bench's TrialRunner — default the hardware
/// concurrency, N >= 1 required. Anything else is a usage error (exit 2).
/// The jobs count is deliberately NOT echoed to stdout: figure output
/// must stay byte-identical across --jobs values.
inline std::size_t parse_jobs(int argc, char** argv) {
    std::size_t jobs = parallel::hardware_jobs();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc) {
            const std::string value = argv[++i];
            char* end = nullptr;
            const long n = std::strtol(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0' || n < 1) {
                std::fprintf(stderr,
                             "error: --jobs must be a positive integer, got '%s'\n",
                             value.c_str());
                std::exit(2);
            }
            jobs = static_cast<std::size_t>(n);
        } else {
            std::fprintf(stderr, "usage: %s [--jobs N]\n", argv[0]);
            std::exit(2);
        }
    }
    return jobs;
}

inline int footer() {
    std::printf("\n%s (%d failed shape checks)\n",
                g_failed_checks == 0 ? "ALL SHAPE CHECKS PASSED" : "SHAPE CHECKS FAILED",
                g_failed_checks);
    return 0; // benches report, they do not abort the bench sweep
}

} // namespace routesync::bench
