// Figure 8 — "Simulations starting with synchronized updates, for
// different values for Tr": Tr in {2.3, 2.5, 2.8} * Tc. The paper's
// labels: at 2.3*Tc synchronization is not broken within 10^7 s; at
// 2.5*Tc it breaks after 4791 rounds; at 2.8*Tc after 300 rounds.
//
// The 3 x 3 trial grid runs through the work-stealing SweepScheduler
// (--jobs N): all trials pool into one task set, idle workers steal from
// the slow Tr values, and results are consumed in submission order, so
// the output is byte-identical for every jobs value.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/core.hpp"
#include "parallel/parallel.hpp"

using namespace routesync;
using namespace routesync::bench;

int main(int argc, char** argv) {
    const Options& options = parse_options(argc, argv);
    const std::size_t jobs = options.jobs;
    header("Figure 8",
           "time to break up vs Tr, synchronized start (Tc = 0.11 s)");

    const double tc = 0.11;
    const int kSeeds = 3; // break-up times are heavy-tailed; average a few
    const std::vector<double> factors{2.3, 2.5, 2.8};

    std::vector<core::ExperimentConfig> configs;
    for (const double factor : factors) {
        for (int seed = 1; seed <= kSeeds; ++seed) {
            core::ExperimentConfig cfg;
            cfg.params.n = 20;
            cfg.params.tp = sim::SimTime::seconds(121);
            cfg.params.tc = sim::SimTime::seconds(tc);
            cfg.params.tr = sim::SimTime::seconds(factor * tc);
            cfg.params.start = core::StartCondition::Synchronized;
            cfg.params.seed = static_cast<std::uint64_t>(seed * 41);
            cfg.max_time = sim::SimTime::seconds(1e7);
            cfg.stop_on_breakup_threshold = 1;
            cfg.record_rounds = seed == 1;
            configs.push_back(cfg);
        }
    }
    const auto results =
        parallel::SweepScheduler{{.jobs = jobs, .batch = options.batch}}.run_all(configs);
    parallel::merge_sweep_into(opts().ctx, results);

    std::vector<double> breakup_means;
    for (std::size_t fi = 0; fi < factors.size(); ++fi) {
        const double factor = factors[fi];
        double total = 0.0;
        int capped = 0;
        for (int seed = 1; seed <= kSeeds; ++seed) {
            const auto& r =
                results[fi * static_cast<std::size_t>(kSeeds) +
                        static_cast<std::size_t>(seed - 1)];

            if (seed == 1) {
                section("cluster graph, Tr = " + std::to_string(factor) +
                        " * Tc, seed 41 (decimated)");
                std::printf("%10s %8s\n", "time_s", "largest");
                const std::size_t stride =
                    std::max<std::size_t>(1, r.rounds.size() / 60);
                for (std::size_t i = 0; i < r.rounds.size(); i += stride) {
                    std::printf("%10.0f %8d\n", r.rounds[i].end_time.sec(),
                                r.rounds[i].largest);
                }
            }
            if (r.breakup_time_sec) {
                total += *r.breakup_time_sec;
            } else {
                total += 1e7;
                ++capped;
            }
        }
        const double mean = total / kSeeds;
        std::printf("Tr = %.1f*Tc: mean time to break %.4g s over %d seeds"
                    " (%d capped at 1e7 s)\n",
                    factor, mean, kSeeds, capped);
        breakup_means.push_back(mean);
    }

    section("summary");
    std::printf("%8s %18s\n", "Tr/Tc", "mean_time_to_break_s");
    for (std::size_t i = 0; i < breakup_means.size(); ++i) {
        std::printf("%8.1f %18.4g\n", factors[i], breakup_means[i]);
    }

    check(breakup_means[0] > breakup_means[1] && breakup_means[1] > breakup_means[2],
          "time to break up falls as Tr grows");
    check(breakup_means[2] < 5e5,
          "at Tr = 2.8*Tc the cluster dissolves within hours (paper: 300 rounds)");
    check(breakup_means[0] > 10.0 * breakup_means[2],
          "at Tr = 2.3*Tc synchronization persists far longer (paper: not "
          "broken within 1e7 s)");

    return footer();
}
