// Figure 5 — "An enlargement of the simulation above": a close-up showing
// two routers forming a cluster (both reset timers at the same instant
// t + 2*Tc) and later breaking apart again. Each 'x' marks a timer
// expiration, each 'o' the timer being reset — the paper's notation.
//
// Part 1 replays the two-router narrative deterministically; part 2 zooms
// into the Figure 4 run and prints the cluster events in a 3000 s window.
#include <cstdio>
#include <memory>

#include "bench/common.hpp"
#include "core/core.hpp"

using namespace routesync;
using namespace routesync::bench;

int main(int argc, char** argv) {
    parse_options(argc, argv);
    header("Figure 5", "close-up of cluster formation and break-up");

    section("part 1: two routers, deterministic replay of the paper's narrative");
    {
        sim::Engine engine;
        core::ModelParams p;
        p.n = 2;
        p.tp = sim::SimTime::seconds(121);
        p.tc = sim::SimTime::seconds(0.11);
        p.tr = sim::SimTime::seconds(0.1);
        p.seed = 7;
        // Node B's timer expires 50 ms into node A's busy period.
        p.initial_phases = {10.0, 10.05};
        core::PeriodicMessagesModel model{engine, p};

        std::printf("%8s %6s %12s\n", "mark", "node", "time_s");
        model.on_transmit = [](int node, sim::SimTime t) {
            std::printf("%8s %6d %12.4f\n", "x", node, t.sec());
        };
        model.on_timer_set = [](int node, sim::SimTime t) {
            std::printf("%8s %6d %12.4f\n", "o", node, t.sec());
        };
        engine.run_until(sim::SimTime::seconds(1000));

        const auto a = model.node(0);
        const auto b = model.node(1);
        std::printf("node A next expiry: %.4f, node B next expiry: %.4f\n",
                    a.next_expiry.sec(), b.next_expiry.sec());
        check(std::abs(a.next_expiry.sec() - b.next_expiry.sec()) < 2 * 0.1,
              "after overlapping busy periods, both nodes' timers track together "
              "(cluster: both reset at t + 2*Tc)");
    }

    section("part 2: cluster events in a window of the Figure 4 run");
    {
        core::ExperimentConfig cfg;
        cfg.params.n = 20;
        cfg.params.tp = sim::SimTime::seconds(121);
        cfg.params.tc = sim::SimTime::seconds(0.11);
        cfg.params.tr = sim::SimTime::seconds(0.1);
        cfg.params.seed = 42;
        cfg.max_time = sim::SimTime::seconds(40000);
        cfg.record_cluster_events = true;
        const auto r = core::run_experiment(cfg);

        std::printf("%12s %6s   (timer-set events, 35.5-38.5 ks window)\n", "time_s",
                    "size");
        int pairs = 0;
        int singles = 0;
        for (const auto& e : r.cluster_events) {
            const double t = e.time.sec();
            if (t >= 35500 && t <= 38500) {
                std::printf("%12.3f %6d\n", t, e.size);
                (e.size >= 2 ? pairs : singles) += 1;
            }
        }
        std::printf("window: %d multi-node cluster events, %d lone timer sets\n",
                    pairs, singles);
        check(pairs > 0, "small clusters form inside the window");
        check(singles > 0,
              "lone routers coexist with clusters (partial synchronization)");
    }

    return footer();
}
