// Quickstart: simulate a network of periodic routers and watch them
// synchronize.
//
//   $ ./examples/quickstart [--seed S] [--trace FILE] [--out FILE]
//
// Twenty routers send routing messages roughly every 121 seconds, with
// only ~0.1 s of accidental timing noise. Although they start at random
// phases, the weak coupling of the Periodic Messages model (a router
// re-arms its timer only after processing its own and any overlapping
// updates) pulls them into lockstep — the central result of Floyd &
// Jacobson, "The Synchronization of Periodic Routing Messages"
// (SIGCOMM '93).
#include <cstdio>

#include "bench/common.hpp"
#include "core/core.hpp"

using namespace routesync;

int main(int argc, char** argv) {
    bench::Options& options = bench::parse_options(
        argc, argv, "quickstart: watch periodic routers synchronize");
    // 1. Describe the system: N routers, period Tp, jitter Tr, per-message
    //    processing cost Tc.
    core::ExperimentConfig config;
    config.params.n = 20;
    config.params.tp = sim::SimTime::seconds(121.0);
    config.params.tr = sim::SimTime::seconds(0.1);
    config.params.tc = sim::SimTime::seconds(0.11);
    config.params.start = core::StartCondition::Unsynchronized;
    config.params.seed = options.seed_or(2026);

    // 2. Run until full synchronization (or the time horizon).
    config.max_time = sim::SimTime::seconds(1e6);
    config.stop_on_full_sync = true;
    config.record_rounds = true;
    config.obs = &options.ctx; // --trace records every timer set/fire
    options.ctx.manifest().seeds.assign(1, config.params.seed);

    const auto result = core::run_experiment(config);

    // 3. Inspect the outcome.
    std::printf("simulated %llu rounds, %llu routing messages\n",
                static_cast<unsigned long long>(result.rounds_closed),
                static_cast<unsigned long long>(result.total_transmissions));
    if (result.full_sync_time_sec) {
        std::printf("all %d routers synchronized after %.0f s (%.1f hours)\n",
                    config.params.n, *result.full_sync_time_sec,
                    *result.full_sync_time_sec / 3600.0);
    } else {
        std::printf("no full synchronization within %.0f s\n",
                    result.end_time_sec);
    }

    // First times each cluster size appeared — the growth staircase.
    std::printf("\n%8s %14s\n", "cluster", "first seen (s)");
    for (int s = 2; s <= config.params.n; s += 2) {
        const auto& t = result.first_hit_up[static_cast<std::size_t>(s)];
        std::printf("%8d %14s\n", s,
                    t ? std::to_string(static_cast<long long>(*t)).c_str() : "-");
    }

    // 4. The fix: re-run with the paper's recommended [0.5*Tp, 1.5*Tp]
    //    jitter. The system now never synchronizes. The trace/manifest
    //    describe the headline run only: a JSONL trace is one simulation
    //    (monotonic time), so the re-run must not append to it.
    config.obs = nullptr;
    config.make_policy = [&] {
        return std::make_unique<core::HalfPeriodJitter>(config.params.tp);
    };
    const auto fixed = core::run_experiment(config);
    std::printf("\nwith uniform [0.5*Tp, 1.5*Tp] timers: %s\n",
                fixed.full_sync_time_sec ? "synchronized (unexpected!)"
                                         : "never synchronizes");
    options.sim_seconds = result.end_time_sec;
    return bench::footer_quiet();
}
