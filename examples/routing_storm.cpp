// routing_storm: the user-visible damage of synchronized routing updates,
// measured with ping on a packet-level network — and what each candidate
// fix does about it.
//
//   $ ./examples/routing_storm
//
// Recreates the paper's Section 2 situation (NEARnet, May 1992): a path
// through core routers whose IGRP-style updates are synchronized. Every
// ~90 s the route processors stall on the update storm and pings die in
// bursts. Three remedies are compared:
//   1. non-blocking forwarding (the actual NEARnet hotfix),
//   2. update-timer jitter (the paper's recommendation),
//   3. both.
#include <cstdio>

#include "bench/common.hpp"
#include "scenarios/scenarios.hpp"
#include "stats/stats.hpp"

using namespace routesync;

namespace {

struct Outcome {
    double loss_pct;
    std::size_t dominant_lag;
    double correlation;
};

Outcome measure(const scenarios::NearnetConfig& config,
                obs::RunContext* ctx = nullptr) {
    scenarios::NearnetScenario s{config, ctx};
    apps::PingConfig pc;
    pc.dst = s.dst().id();
    pc.count = 800;
    apps::PingApp ping{s.src(), pc};
    ping.start(s.routing_start() + sim::SimTime::seconds(200));
    s.engine().run_until(sim::SimTime::seconds(1300));
    if (ctx != nullptr) {
        s.collect_metrics(*ctx);
    }

    const auto series = ping.rtts_with_losses_as(2.0);
    const auto dom = stats::dominant_lag(series, 30, 150);
    return Outcome{100.0 * ping.loss_fraction(), dom.lag, dom.correlation};
}

} // namespace

int main(int argc, char** argv) {
    bench::Options& options = bench::parse_options(
        argc, argv, "routing storm: user-visible damage and three fixes");
    std::printf("pinging across a core with synchronized 90 s routing updates\n");
    std::printf("(300-route tables, 1 ms/route processing — the paper's cisco "
                "measurements)\n\n");
    std::printf("%-34s %8s %12s %8s\n", "configuration", "loss%", "period_lag",
                "corr");

    scenarios::NearnetConfig broken; // blocking CPUs, synchronized, tiny jitter
    const auto a = measure(broken, &options.ctx);
    std::printf("%-34s %8.2f %12zu %8.2f\n", "synchronized + blocking (1992)",
                a.loss_pct, a.dominant_lag, a.correlation);

    scenarios::NearnetConfig hotfix = broken;
    hotfix.blocking_cpu = false;
    const auto b = measure(hotfix);
    std::printf("%-34s %8.2f %12zu %8.2f\n", "non-blocking CPUs (NEARnet fix)",
                b.loss_pct, b.dominant_lag, b.correlation);

    scenarios::NearnetConfig jittered = broken;
    jittered.jitter_sec = 45.0; // half the period: U[45 s, 135 s]
    jittered.synchronized_start = false;
    const auto c = measure(jittered);
    std::printf("%-34s %8.2f %12zu %8.2f\n", "half-period update jitter",
                c.loss_pct, c.dominant_lag, c.correlation);

    std::printf("\nnotes:\n");
    std::printf(" * the 1992 configuration drops pings in bursts every ~90 s "
                "(autocorrelation peak at lag ~89);\n");
    std::printf(" * non-blocking forwarding removes the drops but the update "
                "storm itself (and its network load) remains;\n");
    std::printf(" * jitter removes the storm: updates spread across the whole "
                "period.\n");
    options.sim_seconds = 3 * 1300.0;
    return bench::footer_quiet();
}
