// jitter_tuning: size the randomness for YOUR routing protocol.
//
//   $ ./examples/jitter_tuning [--n N] [--tp period_s] [--tc cost_s]
//
// Given the number of routers sharing a network, their update period, and
// the CPU cost of one update, this walks the paper's Section 5 analysis:
//   * the synchronization threshold (where the phase transition sits),
//   * the minimum jitter for a predominately-unsynchronized network,
//   * how fast an already-synchronized network recovers at that jitter,
//   * the paper's two rules of thumb (10*Tc, and Tp/2).
#include <cstdio>
#include <cstdlib>

#include "bench/common.hpp"
#include "markov/markov.hpp"

using namespace routesync;

int main(int argc, char** argv) {
    bench::OptionsSpec spec;
    spec.extra = {"n", "tp", "tc"};
    spec.description = "size the update-timer randomness for your protocol";
    bench::Options& options = bench::parse_options(argc, argv, spec);
    const int n = options.extra.count("n") != 0
                      ? std::atoi(options.extra.at("n").c_str())
                      : 20;
    const double tp = options.extra.count("tp") != 0
                          ? std::atof(options.extra.at("tp").c_str())
                          : 30.0; // RIP default
    const double tc = options.extra.count("tc") != 0
                          ? std::atof(options.extra.at("tc").c_str())
                          : 0.3; // 300 routes @ 1 ms
    if (n < 2 || tp <= 0 || tc <= 0) {
        std::fprintf(stderr, "usage: %s [--n N>=2] [--tp period_s>0] [--tc cost_s>0]\n",
                     argv[0]);
        return 1;
    }
    obs::Manifest& manifest = options.ctx.manifest();
    manifest.set_config("n", n);
    manifest.set_config("tp_sec", tp);
    manifest.set_config("tc_sec", tc);

    std::printf("network: N=%d routers, period Tp=%.3g s, update cost Tc=%.3g s\n\n",
                n, tp, tc);

    markov::ChainParams p;
    p.n = n;
    p.tp_sec = tp;
    p.tc_sec = tc;
    p.tr_sec = tc; // placeholder; swept below

    std::printf("%10s %10s %16s %18s\n", "Tr (s)", "Tr/Tc", "frac_unsync",
                "recovery g(1)");
    for (const double factor : {0.25, 0.5, 1.0, 2.0, 3.0, 5.0, 10.0}) {
        markov::ChainParams q = p;
        q.tr_sec = factor * tc;
        q.f2_rounds = markov::f2_diffusion_estimate(n, tp, q.tr_sec);
        const markov::FJChain chain{q};
        const double g1 = chain.time_to_break_up_seconds();
        char recovery[64];
        if (g1 > 1e15) {
            std::snprintf(recovery, sizeof recovery, "never");
        } else if (g1 > 86400) {
            std::snprintf(recovery, sizeof recovery, "%.1f days", g1 / 86400);
        } else {
            std::snprintf(recovery, sizeof recovery, "%.2g hours", g1 / 3600);
        }
        std::printf("%10.3g %10.2f %16.4f %18s\n", q.tr_sec, factor,
                    chain.fraction_unsynchronized(), recovery);
    }

    markov::ChainParams base = p;
    base.f2_rounds = markov::f2_diffusion_estimate(n, tp, tc);
    const double tr_star = markov::critical_tr_seconds(base);

    std::printf("\nrecommendations\n");
    std::printf("  50%% synchronization threshold : Tr* = %.3g s (%.1f * Tc)\n",
                tr_star, tr_star / tc);
    std::printf("  engineering margin (2x)       : Tr >= %.3g s\n", 2 * tr_star);
    std::printf("  paper's quick-breakup rule    : Tr >= 10 * Tc = %.3g s\n",
                10 * tc);
    std::printf("  paper's universal fix         : timer ~ uniform[%.3g, %.3g] s "
                "(Tr = Tp/2)\n",
                0.5 * tp, 1.5 * tp);
    std::printf("\n(reset the timer only AFTER processing, and add the jitter "
                "fresh on every arm — see DESIGN.md)\n");
    return bench::footer_quiet();
}
