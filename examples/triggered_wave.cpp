// triggered_wave: a topology change synchronizes an entire network in one
// round — and only sufficient jitter un-does it.
//
//   $ ./examples/triggered_wave
//
// The paper's Section 3: protocols with triggered updates (RIP, IGRP,
// DECnet DNA IV) flood a wave of immediate updates after a failure. Every
// router processes the wave and re-arms its periodic timer at the same
// instant — instant synchronization, no matter how unsynchronized the
// network was. With a small random component the network then STAYS
// synchronized; with a large one it relaxes back.
#include <cstdio>
#include <memory>

#include "bench/common.hpp"
#include "core/core.hpp"

using namespace routesync;

namespace {

void run(const char* label, sim::SimTime tr) {
    sim::Engine engine;
    core::ModelParams params;
    params.n = 20;
    params.tp = sim::SimTime::seconds(121);
    params.tc = sim::SimTime::seconds(0.11);
    params.tr = tr;
    params.seed = 99;
    core::PeriodicMessagesModel model{engine, params};
    core::ClusterTracker tracker{params.n, model.round_length()};
    tracker.record_rounds(true);
    model.on_timer_set = [&](int node, sim::SimTime t) {
        tracker.on_timer_set(node, t);
    };

    // Let the unsynchronized steady state establish itself, then fail a
    // link at t = 10000 s: every router emits a triggered update.
    engine.schedule_at(sim::SimTime::seconds(10000),
                       [&] { model.trigger_update_all(); });
    engine.run_until(sim::SimTime::seconds(200000));
    tracker.finish();

    // How long did the triggered synchronization last? (The network was
    // unsynchronized before the wave, so look for the first small round
    // strictly after the wave.)
    const auto sync_at = tracker.full_sync_time();
    std::printf("%-28s", label);
    if (!sync_at) {
        std::printf(" wave did not fully synchronize (!)\n");
        return;
    }
    std::printf(" wave syncs all 20 at t=%.0f s;", sync_at->sec());
    double recovered_at = -1.0;
    for (const auto& round : tracker.rounds()) {
        if (round.end_time > *sync_at && round.largest <= 2) {
            recovered_at = round.end_time.sec();
            break;
        }
    }
    if (recovered_at > 0) {
        std::printf(" recovered (largest<=2) after %.0f s\n",
                    recovered_at - sync_at->sec());
    } else {
        std::printf(" still synchronized at t=200000 s\n");
    }
}

} // namespace

int main(int argc, char** argv) {
    bench::parse_options(
        argc, argv, "triggered-update wave: instant synchronization and its cure");
    std::printf("a triggered-update wave at t=10000 s hits 20 routers "
                "(Tp=121 s, Tc=0.11 s):\n\n");
    run("Tr = 0.05 s (< Tc/2):", sim::SimTime::seconds(0.05));
    run("Tr = 0.11 s (= Tc):", sim::SimTime::seconds(0.11));
    run("Tr = 1.10 s (= 10*Tc):", sim::SimTime::seconds(1.10));

    std::printf("\nmoral: triggered updates make 'start unsynchronized and hope'"
                " a losing strategy —\nthe jitter must be large enough to "
                "dissolve synchronization, not just avoid creating it.\n");
    bench::opts().sim_seconds = 3 * 200000.0;
    return bench::footer_quiet();
}
