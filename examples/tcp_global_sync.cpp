// tcp_global_sync: the paper's *other* famous synchronization — TCP
// congestion windows locking into global oscillation at a shared
// drop-tail bottleneck, and the randomized-gateway cure.
//
//   $ ./examples/tcp_global_sync
//
// Uses the tcpsync library: AIMD flows, a bottleneck gateway with a
// pluggable drop discipline, and halving-cluster synchronization metrics.
#include <cstdio>

#include "bench/common.hpp"
#include "tcpsync/tcpsync.hpp"

using namespace routesync;

namespace {

void report(const char* label, tcpsync::DropPolicy policy) {
    tcpsync::TcpExperimentConfig config;
    config.flows = 8;
    config.base_rtt_sec = 0.1;
    config.duration_sec = 240.0;
    config.bottleneck.policy = policy;
    config.bottleneck.rate_pps = 1200.0;
    config.bottleneck.buffer_packets = 150;
    config.bottleneck.red_min_frac = 0.1;
    config.bottleneck.red_max_frac = 0.6;
    config.bottleneck.red_p_max = 0.03;
    config.bottleneck.red_weight = 0.002;

    const auto r = tcpsync::run_tcp_experiment(config);
    std::printf("%-24s backoff episodes touch %.1f of 8 flows;"
                " utilization %.0f%%; aggregate-window swing %.0f%%\n",
                label, r.mean_flows_per_episode, 100 * r.link_utilization,
                100 * r.aggregate_window_cov);
}

} // namespace

int main(int argc, char** argv) {
    bench::parse_options(
        argc, argv, "TCP global synchronization at a drop-tail bottleneck");
    std::printf("8 TCP-like flows share one bottleneck for 4 minutes:\n\n");
    report("drop-tail gateway:", tcpsync::DropPolicy::DropTail);
    report("random-drop gateway:", tcpsync::DropPolicy::RandomDrop);
    report("random early drop:", tcpsync::DropPolicy::RedLike);
    std::printf(
        "\nthe drop-tail gateway synchronizes every flow's window cycle\n"
        "(the [ZhCl90] oscillation); randomizing which packet is dropped\n"
        "([FJ92]) breaks the lockstep — the same cure the paper prescribes\n"
        "for routing timers.\n");
    return 0;
}
